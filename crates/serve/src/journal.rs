//! The daemon's job journal: an append-only line file that makes accepted
//! work survive restarts, crashes, and drains.
//!
//! Format (`jobs.journal` in the daemon's state directory):
//!
//! ```text
//! mempool-serve-journal v1
//! job <id> {"tenant":...,"priority":...,"deadline_secs":...,<spec fields>}
//! state <id> <queued|running|parked>
//! done <id> <completed|failed|cancelled> {payload}
//! ```
//!
//! Each line is flushed and synced as it is appended, so the journal is
//! `SIGKILL`-safe: the worst a crash can leave behind is one truncated
//! final line. Replay applies the same recovery contract the campaign
//! manifest established — a corrupt or truncated line is *skipped with a
//! warning and counted*, never a startup abort — and the count is
//! surfaced in the daemon's health report. On restart the daemon rewrites
//! the journal from the replayed state (atomic temp + rename), so
//! corruption is also self-healing: it costs at worst the lines that were
//! unreadable, not the file.

use crate::protocol::{JobSpec, JobStatus};
use mempool_traffic::{json_escape, parse_flat_json};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;

/// First line of every journal file.
pub const JOURNAL_HEADER: &str = "mempool-serve-journal v1";

/// One job reconstructed by replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedJob {
    /// Job id.
    pub id: u64,
    /// Tenant the job is charged to.
    pub tenant: String,
    /// Priority class.
    pub priority: u8,
    /// Per-attempt wall-clock deadline in seconds, if set.
    pub deadline_secs: Option<u64>,
    /// The job payload.
    pub spec: JobSpec,
    /// Last journaled lifecycle state.
    pub status: JobStatus,
    /// Terminal payload (`done` line), when the job finished.
    pub payload: Option<String>,
}

/// The result of replaying a journal.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Every reconstructed job, in id order.
    pub jobs: Vec<ReplayedJob>,
    /// Corrupt, truncated, or orphaned lines that were skipped (surfaced
    /// in the health report).
    pub skipped: usize,
    /// Human-readable warnings, one per skipped line.
    pub warnings: Vec<String>,
    /// The next job id a restarted daemon should assign.
    pub next_id: u64,
}

/// Replays the journal at `path`. A missing file is an empty journal; a
/// damaged one yields every parsable line (see the module docs).
///
/// # Errors
///
/// Only I/O errors reading an *existing* file — malformed content is
/// recovered from, not raised.
pub fn replay(path: &Path) -> io::Result<JournalReplay> {
    let mut replay = JournalReplay::default();
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(replay),
        Err(e) => return Err(e),
    };
    let mut jobs: BTreeMap<u64, ReplayedJob> = BTreeMap::new();
    let mut lines = content.lines();
    match lines.next() {
        Some(JOURNAL_HEADER) => {}
        Some(other) => {
            replay.skipped += 1;
            replay
                .warnings
                .push(format!("unrecognized journal header `{other}`; parsing anyway"));
        }
        None => return Ok(replay),
    }
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line, &mut jobs) {
            Ok(()) => {}
            Err(why) => {
                replay.skipped += 1;
                replay.warnings.push(format!("skipping journal line: {why}"));
            }
        }
    }
    replay.next_id = jobs.keys().next_back().map_or(0, |id| id + 1);
    replay.jobs = jobs.into_values().collect();
    Ok(replay)
}

fn parse_line(line: &str, jobs: &mut BTreeMap<u64, ReplayedJob>) -> Result<(), String> {
    let (tag, rest) = line
        .split_once(' ')
        .ok_or_else(|| format!("no tag in `{line}`"))?;
    let (id_str, rest) = rest
        .split_once(' ')
        .ok_or_else(|| format!("no id in `{line}`"))?;
    let id: u64 = id_str
        .parse()
        .map_err(|_| format!("bad id `{id_str}` in `{line}`"))?;
    match tag {
        "job" => {
            let fields =
                parse_flat_json(rest).ok_or_else(|| format!("malformed job JSON for id {id}"))?;
            let tenant = fields
                .get("tenant")
                .ok_or_else(|| format!("job {id} lacks a tenant"))?
                .clone();
            let priority = fields
                .get("priority")
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| format!("job {id} lacks a priority"))?;
            let deadline_secs = match fields.get("deadline_secs").map(String::as_str) {
                None | Some("null") => None,
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| format!("job {id} has a bad deadline"))?,
                ),
            };
            let spec = JobSpec::from_fields(&fields).map_err(|e| format!("job {id}: {e}"))?;
            jobs.insert(
                id,
                ReplayedJob {
                    id,
                    tenant,
                    priority,
                    deadline_secs,
                    spec,
                    status: JobStatus::Queued,
                    payload: None,
                },
            );
            Ok(())
        }
        "state" => {
            let status = JobStatus::parse(rest.trim())
                .filter(|s| !s.is_terminal())
                .ok_or_else(|| format!("bad state `{rest}` for job {id}"))?;
            let job = jobs
                .get_mut(&id)
                .ok_or_else(|| format!("state line for unknown job {id}"))?;
            job.status = status;
            Ok(())
        }
        "done" => {
            let (outcome, payload) = rest
                .split_once(' ')
                .ok_or_else(|| format!("no payload in done line for job {id}"))?;
            let status = JobStatus::parse(outcome)
                .filter(|s| s.is_terminal())
                .ok_or_else(|| format!("bad outcome `{outcome}` for job {id}"))?;
            parse_flat_json(payload)
                .ok_or_else(|| format!("malformed done payload for job {id}"))?;
            let job = jobs
                .get_mut(&id)
                .ok_or_else(|| format!("done line for unknown job {id}"))?;
            job.status = status;
            job.payload = Some(payload.to_owned());
            Ok(())
        }
        other => Err(format!("unknown tag `{other}` in `{line}`")),
    }
}

/// Renders a `job` line's JSON body (shared by the live journal and the
/// restart rewrite).
fn job_line(job: &ReplayedJob) -> String {
    format!(
        "job {} {{\"tenant\":\"{}\",\"priority\":{},\"deadline_secs\":{},{}}}",
        job.id,
        json_escape(&job.tenant),
        job.priority,
        job.deadline_secs
            .map_or_else(|| "null".to_owned(), |d| d.to_string()),
        job.spec.to_json_body(),
    )
}

/// The append side of the journal.
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
}

impl Journal {
    /// Atomically rewrites the journal from `jobs` (dropping any
    /// corruption replay skipped) and opens it for appending. Pass the
    /// replayed jobs on restart, or an empty slice for a fresh daemon.
    ///
    /// # Errors
    ///
    /// I/O errors writing or renaming the file.
    pub fn rewrite(path: &Path, jobs: &[ReplayedJob]) -> io::Result<Journal> {
        let mut content = format!("{JOURNAL_HEADER}\n");
        for job in jobs {
            content.push_str(&job_line(job));
            content.push('\n');
            // `running` is deliberately not persisted: the worker does not
            // survive a restart, so a running job replays as queued and is
            // re-dispatched from its last checkpoint.
            if job.status == JobStatus::Parked {
                content.push_str(&format!("state {} {}\n", job.id, job.status));
            }
            if let (true, Some(payload)) = (job.status.is_terminal(), &job.payload) {
                content.push_str(&format!("done {} {} {payload}\n", job.id, job.status));
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &content)?;
        std::fs::rename(&tmp, path)?;
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(Journal { file })
    }

    /// Appends the admission record of a new job.
    ///
    /// # Errors
    ///
    /// The underlying write or sync failure.
    pub fn record_job(&mut self, job: &ReplayedJob) -> io::Result<()> {
        writeln!(self.file, "{}", job_line(job))?;
        self.file.sync_all()
    }

    /// Appends a non-terminal state transition.
    ///
    /// # Errors
    ///
    /// The underlying write or sync failure.
    pub fn record_state(&mut self, id: u64, status: JobStatus) -> io::Result<()> {
        debug_assert!(!status.is_terminal());
        writeln!(self.file, "state {id} {status}")?;
        self.file.sync_all()
    }

    /// Appends a terminal record with its payload (one flat JSON object).
    ///
    /// # Errors
    ///
    /// The underlying write or sync failure.
    pub fn record_done(&mut self, id: u64, status: JobStatus, payload: &str) -> io::Result<()> {
        debug_assert!(status.is_terminal());
        writeln!(self.file, "done {id} {status} {payload}")?;
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RunSpec;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mempool-serve-journal-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join("jobs.journal")
    }

    fn job(id: u64, tenant: &str) -> ReplayedJob {
        ReplayedJob {
            id,
            tenant: tenant.to_owned(),
            priority: 2,
            deadline_secs: Some(30),
            spec: JobSpec::Run(RunSpec {
                config_spec: "topology=top1,small=true,scramble=false".to_owned(),
                program: "ecall\n".to_owned(),
                max_cycles: 1_000,
                checkpoint_every: 128,
                metrics: false,
            }),
            status: JobStatus::Queued,
            payload: None,
        }
    }

    #[test]
    fn journal_round_trips_job_lifecycles() {
        let path = scratch("roundtrip");
        let mut journal = Journal::rewrite(&path, &[]).expect("create");
        journal.record_job(&job(0, "a")).unwrap();
        journal.record_state(0, JobStatus::Running).unwrap();
        journal.record_job(&job(1, "b")).unwrap();
        journal
            .record_done(0, JobStatus::Completed, "{\"state_digest\":\"0xabc\"}")
            .unwrap();
        journal.record_state(1, JobStatus::Parked).unwrap();

        let replay = replay(&path).expect("replay");
        assert_eq!(replay.skipped, 0, "{:?}", replay.warnings);
        assert_eq!(replay.next_id, 2);
        assert_eq!(replay.jobs.len(), 2);
        assert_eq!(replay.jobs[0].status, JobStatus::Completed);
        assert_eq!(
            replay.jobs[0].payload.as_deref(),
            Some("{\"state_digest\":\"0xabc\"}")
        );
        assert_eq!(replay.jobs[1].status, JobStatus::Parked);
        assert_eq!(replay.jobs[1].tenant, "b");
        assert_eq!(replay.jobs[1].spec, job(1, "b").spec);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corrupt_and_truncated_lines_are_skipped_and_counted() {
        let path = scratch("corrupt");
        {
            let mut journal = Journal::rewrite(&path, &[]).expect("create");
            journal.record_job(&job(0, "a")).unwrap();
            journal.record_job(&job(1, "b")).unwrap();
            journal.record_state(1, JobStatus::Running).unwrap();
        }
        // Simulate bit rot and a kill mid-append: garbage, an orphaned
        // state line, and a truncated final line.
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str("garbage line\n");
        content.push_str("state 99 running\n");
        content.push_str("job 2 {\"tenant\":\"c\",\"prio"); // truncated, no newline
        std::fs::write(&path, &content).unwrap();

        let replay = replay(&path).expect("replay survives");
        assert_eq!(replay.skipped, 3, "{:?}", replay.warnings);
        assert_eq!(replay.jobs.len(), 2, "intact jobs recovered");
        assert_eq!(replay.jobs[1].status, JobStatus::Running);
        assert_eq!(replay.next_id, 2);
        assert_eq!(replay.warnings.len(), 3);

        // The restart rewrite drops the damage and replays clean.
        let _ = Journal::rewrite(&path, &replay.jobs).expect("rewrite");
        let second = super::replay(&path).expect("second replay");
        assert_eq!(second.skipped, 0, "{:?}", second.warnings);
        assert_eq!(second.jobs.len(), 2);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn missing_file_and_bad_header_are_tolerated() {
        let path = scratch("missing");
        let replay0 = replay(&path).expect("missing file is empty");
        assert_eq!(replay0.jobs.len(), 0);
        assert_eq!(replay0.next_id, 0);

        std::fs::write(&path, "some other format\njob 0 {}\n").unwrap();
        let replay1 = replay(&path).expect("bad header tolerated");
        // The header and the spec-less job line are both skipped.
        assert_eq!(replay1.skipped, 2, "{:?}", replay1.warnings);
        assert!(replay1.jobs.is_empty());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn rewrite_preserves_running_as_queued_and_parked_as_parked() {
        let path = scratch("rewrite");
        let mut running = job(3, "a");
        running.status = JobStatus::Running;
        let mut parked = job(4, "b");
        parked.status = JobStatus::Parked;
        let _ = Journal::rewrite(&path, &[running, parked]).expect("rewrite");
        let replay = replay(&path).expect("replay");
        // `running` has no state line in the rewrite (the worker is gone
        // after a restart), so it replays as queued; parked is explicit.
        assert_eq!(replay.jobs[0].status, JobStatus::Queued);
        assert_eq!(replay.jobs[1].status, JobStatus::Parked);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
