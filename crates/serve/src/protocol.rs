//! The `mempool-job-v1` JSON-lines protocol: requests, job specs, and the
//! response/event documents the daemon streams back.
//!
//! Every message is one flat JSON object per line (string / number / bool /
//! null values only), encoded and decoded with the shared codec in
//! [`mempool_traffic`] (`json_escape` / `parse_flat_json`) so the daemon,
//! its workers, and external clients all speak byte-for-byte the same
//! dialect. Nested documents (a metrics registry, a campaign report) travel
//! as escaped string fields.

use mempool_traffic::{json_escape, parse_config_spec, parse_flat_json, Pattern};
use std::collections::BTreeMap;
use std::fmt;

/// Protocol tag clients should expect in the health document.
pub const PROTOCOL_VERSION: &str = "mempool-job-v1";

/// A `run` job: one assembled program executed to completion on a chosen
/// cluster configuration, checkpoint-parked at chunk boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Opaque cluster-config spec (see [`mempool_traffic::parse_config_spec`]).
    pub config_spec: String,
    /// RISC-V assembly source of the program to run.
    pub program: String,
    /// Absolute cycle budget: the program must halt within this many
    /// cycles from reset (resume-safe — the count survives parking).
    pub max_cycles: u64,
    /// Checkpoint/park granularity in cycles (also the heartbeat cadence).
    pub checkpoint_every: u64,
    /// Attach the observability recorder and return the
    /// `mempool-metrics-v1` document with the result.
    pub metrics: bool,
}

/// A `campaign` job: a resumable fault-injection campaign (manifest plus
/// trial checkpoints), executed trial by trial in the worker.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Opaque cluster-config spec.
    pub config_spec: String,
    /// Fault intensity, in `FaultSpec` form (`bank_fail=1,link_drop=0.001`).
    pub faults: String,
    /// Number of trials.
    pub trials: u32,
    /// Offered load per core.
    pub load: f64,
    /// Traffic pattern, in [`Pattern::to_spec`] form.
    pub pattern: String,
    /// Warmup window of each trial, in cycles.
    pub warmup: u64,
    /// Measurement window of each trial, in cycles.
    pub measure: u64,
    /// Drain budget of each trial, in cycles.
    pub drain: u64,
    /// First trial seed.
    pub seed: u64,
    /// Mid-trial checkpoint interval in cycles.
    pub checkpoint_every: u64,
    /// Per-trial sim-cycle budget enforced via `CancelToken` (`None` =
    /// unbounded).
    pub cycle_budget: Option<u64>,
}

/// A `bench` job: the simulator-throughput matrix, one point per
/// (topology, size, engine/worker-count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchSpec {
    /// Measured cycles per point.
    pub cycles: u64,
    /// Warm-up cycles before the timed window.
    pub warmup: u64,
    /// Cluster sizes to measure (subset of {16, 64, 256} cores).
    pub cores: Vec<usize>,
    /// Parallel-engine worker counts to measure.
    pub workers: Vec<usize>,
}

/// One submitted job's payload, by kind.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Execute one program (see [`RunSpec`]).
    Run(RunSpec),
    /// Execute a fault campaign (see [`CampaignSpec`]).
    Campaign(CampaignSpec),
    /// Execute the bench matrix (see [`BenchSpec`]).
    Bench(BenchSpec),
}

fn parse_usize_list(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad list entry `{p}`"))
        })
        .collect()
}

fn render_usize_list(list: &[usize]) -> String {
    list.iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

impl JobSpec {
    /// The job kind's wire word (`run` / `campaign` / `bench`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Run(_) => "run",
            JobSpec::Campaign(_) => "campaign",
            JobSpec::Bench(_) => "bench",
        }
    }

    /// Validates the spec without running anything: config specs parse,
    /// the program assembles, pattern and fault specs parse, and every
    /// numeric knob is in range. Admission-time validation keeps
    /// deterministic garbage out of the retry machinery.
    ///
    /// # Errors
    ///
    /// A description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            JobSpec::Run(spec) => {
                parse_config_spec(&spec.config_spec)?;
                mempool_riscv::assemble(&spec.program)
                    .map_err(|e| format!("program does not assemble: {e}"))?;
                if spec.max_cycles == 0 {
                    return Err("max_cycles must be nonzero".to_owned());
                }
                if spec.checkpoint_every == 0 {
                    return Err("checkpoint_every must be nonzero".to_owned());
                }
                Ok(())
            }
            JobSpec::Campaign(spec) => {
                parse_config_spec(&spec.config_spec)?;
                spec.faults
                    .parse::<mempool::FaultSpec>()
                    .map_err(|e| format!("bad fault spec `{}`: {e}", spec.faults))?;
                Pattern::parse_spec(&spec.pattern)
                    .ok_or_else(|| format!("bad pattern spec `{}`", spec.pattern))?;
                if spec.trials == 0 {
                    return Err("trials must be nonzero".to_owned());
                }
                if spec.measure == 0 {
                    return Err("measure window must be nonzero".to_owned());
                }
                if !(spec.load > 0.0 && spec.load <= 1.0) {
                    return Err(format!("load {} out of (0, 1]", spec.load));
                }
                if spec.checkpoint_every == 0 {
                    return Err("checkpoint_every must be nonzero".to_owned());
                }
                Ok(())
            }
            JobSpec::Bench(spec) => {
                if spec.cycles == 0 {
                    return Err("cycles must be nonzero".to_owned());
                }
                if spec.cores.is_empty() || spec.workers.is_empty() {
                    return Err("cores and workers lists must be nonempty".to_owned());
                }
                for &c in &spec.cores {
                    if !matches!(c, 16 | 64 | 256) {
                        return Err(format!("unsupported bench size: {c} cores (16/64/256)"));
                    }
                }
                for &w in &spec.workers {
                    if w == 0 {
                        return Err("bench worker counts must be nonzero".to_owned());
                    }
                }
                Ok(())
            }
        }
    }

    /// Renders the spec as JSON body fields (no surrounding braces), the
    /// form embedded in submit requests, journal lines, and worker jobs.
    pub fn to_json_body(&self) -> String {
        match self {
            JobSpec::Run(spec) => format!(
                "\"kind\":\"run\",\"config_spec\":\"{}\",\"program\":\"{}\",\
                 \"max_cycles\":{},\"checkpoint_every\":{},\"metrics\":{}",
                json_escape(&spec.config_spec),
                json_escape(&spec.program),
                spec.max_cycles,
                spec.checkpoint_every,
                spec.metrics,
            ),
            JobSpec::Campaign(spec) => format!(
                "\"kind\":\"campaign\",\"config_spec\":\"{}\",\"faults\":\"{}\",\
                 \"trials\":{},\"load\":{},\"pattern\":\"{}\",\"warmup\":{},\
                 \"measure\":{},\"drain\":{},\"seed\":{},\"checkpoint_every\":{},\
                 \"cycle_budget\":{}",
                json_escape(&spec.config_spec),
                json_escape(&spec.faults),
                spec.trials,
                spec.load,
                json_escape(&spec.pattern),
                spec.warmup,
                spec.measure,
                spec.drain,
                spec.seed,
                spec.checkpoint_every,
                spec.cycle_budget
                    .map_or_else(|| "null".to_owned(), |b| b.to_string()),
            ),
            JobSpec::Bench(spec) => format!(
                "\"kind\":\"bench\",\"cycles\":{},\"warmup\":{},\"cores\":\"{}\",\
                 \"workers\":\"{}\"",
                spec.cycles,
                spec.warmup,
                render_usize_list(&spec.cores),
                render_usize_list(&spec.workers),
            ),
        }
    }

    /// Reconstructs a spec from parsed flat-JSON fields.
    ///
    /// # Errors
    ///
    /// A description of the first missing or malformed field.
    pub fn from_fields(fields: &BTreeMap<String, String>) -> Result<JobSpec, String> {
        let get = |k: &str| {
            fields
                .get(k)
                .ok_or_else(|| format!("missing job field `{k}`"))
        };
        let num = |k: &str| -> Result<u64, String> {
            get(k)?
                .parse()
                .map_err(|_| format!("non-numeric job field `{k}`"))
        };
        match get("kind")?.as_str() {
            "run" => Ok(JobSpec::Run(RunSpec {
                config_spec: get("config_spec")?.clone(),
                program: get("program")?.clone(),
                max_cycles: num("max_cycles")?,
                checkpoint_every: num("checkpoint_every")?,
                metrics: get("metrics")? == "true",
            })),
            "campaign" => Ok(JobSpec::Campaign(CampaignSpec {
                config_spec: get("config_spec")?.clone(),
                faults: get("faults")?.clone(),
                trials: num("trials")? as u32,
                load: get("load")?
                    .parse()
                    .map_err(|_| "non-numeric job field `load`".to_owned())?,
                pattern: get("pattern")?.clone(),
                warmup: num("warmup")?,
                measure: num("measure")?,
                drain: num("drain")?,
                seed: num("seed")?,
                checkpoint_every: num("checkpoint_every")?,
                cycle_budget: match get("cycle_budget")?.as_str() {
                    "null" => None,
                    v => Some(
                        v.parse()
                            .map_err(|_| "non-numeric job field `cycle_budget`".to_owned())?,
                    ),
                },
            })),
            "bench" => Ok(JobSpec::Bench(BenchSpec {
                cycles: num("cycles")?,
                warmup: num("warmup")?,
                cores: parse_usize_list(get("cores")?)?,
                workers: parse_usize_list(get("workers")?)?,
            })),
            other => Err(format!("unknown job kind `{other}`")),
        }
    }
}

/// A job's lifecycle state, as reported by `status` and journaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobStatus {
    /// Admitted and waiting for a worker slot (includes backoff waits
    /// between retry attempts).
    Queued,
    /// A worker process is executing the job.
    Running,
    /// Checkpoint-parked by a drain; a restarted daemon resumes it.
    Parked,
    /// Finished with a result payload.
    Completed,
    /// Gave up after the retry policy was exhausted.
    Failed,
    /// Cancelled by a client.
    Cancelled,
}

impl JobStatus {
    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Completed | JobStatus::Failed | JobStatus::Cancelled
        )
    }

    /// Parses the wire word.
    pub fn parse(s: &str) -> Option<JobStatus> {
        Some(match s {
            "queued" => JobStatus::Queued,
            "running" => JobStatus::Running,
            "parked" => JobStatus::Parked,
            "completed" => JobStatus::Completed,
            "failed" => JobStatus::Failed,
            "cancelled" => JobStatus::Cancelled,
            _ => return None,
        })
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Parked => "parked",
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        })
    }
}

/// One client request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job for execution.
    Submit {
        /// Tenant the job is charged to.
        tenant: String,
        /// Priority class (higher dispatches first).
        priority: u8,
        /// Per-attempt wall-clock deadline in seconds (`None` = daemon
        /// default).
        deadline_secs: Option<u64>,
        /// The job payload.
        spec: JobSpec,
    },
    /// Query one job's state.
    Status {
        /// Job id.
        job: u64,
    },
    /// Query daemon health (queue depths, journal recovery counters).
    Health,
    /// Cancel a queued or running job.
    Cancel {
        /// Job id.
        job: u64,
    },
    /// Subscribe to a job's event stream until it reaches a terminal
    /// state.
    Wait {
        /// Job id.
        job: u64,
    },
    /// Ask the daemon to drain: park in-flight jobs and exit.
    Shutdown,
}

impl Request {
    /// Renders the request as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Request::Submit {
                tenant,
                priority,
                deadline_secs,
                spec,
            } => format!(
                "{{\"op\":\"submit\",\"tenant\":\"{}\",\"priority\":{},\
                 \"deadline_secs\":{},{}}}",
                json_escape(tenant),
                priority,
                deadline_secs.map_or_else(|| "null".to_owned(), |d| d.to_string()),
                spec.to_json_body(),
            ),
            Request::Status { job } => format!("{{\"op\":\"status\",\"job\":{job}}}"),
            Request::Health => "{\"op\":\"health\"}".to_owned(),
            Request::Cancel { job } => format!("{{\"op\":\"cancel\",\"job\":{job}}}"),
            Request::Wait { job } => format!("{{\"op\":\"wait\",\"job\":{job}}}"),
            Request::Shutdown => "{\"op\":\"shutdown\"}".to_owned(),
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A description of the first malformed or missing field.
    pub fn from_json(line: &str) -> Result<Request, String> {
        let fields = parse_flat_json(line).ok_or_else(|| "malformed request JSON".to_owned())?;
        let job = |fields: &BTreeMap<String, String>| -> Result<u64, String> {
            fields
                .get("job")
                .ok_or_else(|| "missing request field `job`".to_owned())?
                .parse()
                .map_err(|_| "non-numeric request field `job`".to_owned())
        };
        match fields
            .get("op")
            .ok_or_else(|| "missing request field `op`".to_owned())?
            .as_str()
        {
            "submit" => {
                let tenant = fields
                    .get("tenant")
                    .ok_or_else(|| "missing request field `tenant`".to_owned())?
                    .clone();
                if tenant.is_empty() {
                    return Err("tenant must be nonempty".to_owned());
                }
                let priority = fields
                    .get("priority")
                    .map_or(Ok(0), |p| {
                        p.parse()
                            .map_err(|_| "non-numeric request field `priority`".to_owned())
                    })?;
                let deadline_secs = match fields.get("deadline_secs").map(String::as_str) {
                    None | Some("null") => None,
                    Some(v) => Some(
                        v.parse()
                            .map_err(|_| "non-numeric request field `deadline_secs`".to_owned())?,
                    ),
                };
                Ok(Request::Submit {
                    tenant,
                    priority,
                    deadline_secs,
                    spec: JobSpec::from_fields(&fields)?,
                })
            }
            "status" => Ok(Request::Status { job: job(&fields)? }),
            "health" => Ok(Request::Health),
            "cancel" => Ok(Request::Cancel { job: job(&fields)? }),
            "wait" => Ok(Request::Wait { job: job(&fields)? }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// Builds an `{"ok":true,...}` response line from extra fields (values
/// must already be valid JSON tokens — quote and escape strings first).
pub fn resp_ok(extra: &[(&str, String)]) -> String {
    let mut out = String::from("{\"ok\":true");
    for (k, v) in extra {
        out.push_str(&format!(",\"{k}\":{v}"));
    }
    out.push('}');
    out
}

/// Builds a typed `{"ok":false,"error":...}` rejection line. `kind` is the
/// machine-readable class (`overloaded`, `quota`, `invalid`, `unknown-job`,
/// `draining`); `detail` is human-readable.
pub fn resp_err(kind: &str, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"detail\":\"{}\"}}",
        json_escape(kind),
        json_escape(detail)
    )
}

/// Builds an event line streamed to `wait` subscribers.
pub fn event(kind: &str, job: u64, extra: &[(&str, String)]) -> String {
    let mut out = format!("{{\"event\":\"{kind}\",\"job\":{job}");
    for (k, v) in extra {
        out.push_str(&format!(",\"{k}\":{v}"));
    }
    out.push('}');
    out
}

/// Quotes and escapes a string into a JSON string token (for
/// [`resp_ok`] / [`event`] values).
pub fn json_str(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_spec() -> JobSpec {
        JobSpec::Run(RunSpec {
            config_spec: "topology=top1,small=true,scramble=false".to_owned(),
            program: "csrr a0, mhartid\necall\n".to_owned(),
            max_cycles: 10_000,
            checkpoint_every: 512,
            metrics: true,
        })
    }

    #[test]
    fn submit_round_trips_for_every_kind() {
        let specs = [
            run_spec(),
            JobSpec::Campaign(CampaignSpec {
                config_spec: "topology=topH,small=true,scramble=true".to_owned(),
                faults: "bank_fail=1,link_drop=0.001".to_owned(),
                trials: 3,
                load: 0.05,
                pattern: "uniform".to_owned(),
                warmup: 100,
                measure: 400,
                drain: 10_000,
                seed: 7,
                checkpoint_every: 256,
                cycle_budget: Some(1_000_000),
            }),
            JobSpec::Bench(BenchSpec {
                cycles: 300,
                warmup: 50,
                cores: vec![16, 64],
                workers: vec![2, 4],
            }),
        ];
        for spec in specs {
            let req = Request::Submit {
                tenant: "team-a".to_owned(),
                priority: 3,
                deadline_secs: Some(60),
                spec: spec.clone(),
            };
            let round = Request::from_json(&req.to_json()).expect("round trip");
            assert_eq!(round, req, "{}", req.to_json());
        }
    }

    #[test]
    fn control_requests_round_trip() {
        for req in [
            Request::Status { job: 17 },
            Request::Health,
            Request::Cancel { job: 0 },
            Request::Wait { job: 99 },
            Request::Shutdown,
        ] {
            assert_eq!(Request::from_json(&req.to_json()), Ok(req));
        }
        assert!(Request::from_json("garbage").is_err());
        assert!(Request::from_json("{\"op\":\"nope\"}").is_err());
        assert!(Request::from_json("{\"op\":\"status\"}").is_err(), "job required");
    }

    #[test]
    fn validation_rejects_deterministic_garbage() {
        assert!(run_spec().validate().is_ok());
        let JobSpec::Run(mut bad) = run_spec() else {
            unreachable!()
        };
        bad.program = "not a riscv instruction".to_owned();
        assert!(JobSpec::Run(bad.clone()).validate().is_err());
        bad.program = "ecall\n".to_owned();
        bad.config_spec = "topology=weird".to_owned();
        assert!(JobSpec::Run(bad).validate().is_err());
        let bench = JobSpec::Bench(BenchSpec {
            cycles: 100,
            warmup: 0,
            cores: vec![12],
            workers: vec![1],
        });
        assert!(bench.validate().is_err(), "12 cores unsupported");
    }

    #[test]
    fn status_words_round_trip() {
        for s in [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Parked,
            JobStatus::Completed,
            JobStatus::Failed,
            JobStatus::Cancelled,
        ] {
            assert_eq!(JobStatus::parse(&s.to_string()), Some(s));
            assert_eq!(
                s.is_terminal(),
                matches!(
                    s,
                    JobStatus::Completed | JobStatus::Failed | JobStatus::Cancelled
                )
            );
        }
        assert_eq!(JobStatus::parse("nope"), None);
    }
}
