//! A blocking client for the `mempool-job-v1` socket protocol, used by
//! `mempool-cli` and the integration tests.
//!
//! Each operation opens its own connection (one request, one response
//! line — except [`ServeClient::wait`], which streams event lines until
//! the job is terminal). That keeps the wire trivially framed and means a
//! client never has to demultiplex.

use crate::protocol::{JobSpec, Request};
use mempool_traffic::parse_flat_json;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

/// Why a client operation failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket could not be reached or dropped mid-operation.
    Io(io::Error),
    /// The daemon answered with something unparsable.
    Protocol(String),
    /// The daemon rejected the request; `kind` is the typed class from
    /// the wire (`overloaded`, `quota`, `invalid`, `unknown-job`,
    /// `draining`).
    Rejected {
        /// Machine-readable rejection class.
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Rejected { kind, detail } => write!(f, "rejected ({kind}): {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A handle on a daemon's socket.
#[derive(Debug, Clone)]
pub struct ServeClient {
    socket: PathBuf,
}

type Fields = BTreeMap<String, String>;

fn parse_line(line: &str) -> Result<Fields, ClientError> {
    parse_flat_json(line)
        .ok_or_else(|| ClientError::Protocol(format!("unparsable response `{line}`")))
}

/// Turns an `{"ok":false,...}` document into [`ClientError::Rejected`].
fn check_ok(fields: Fields) -> Result<Fields, ClientError> {
    match fields.get("ok").map(String::as_str) {
        Some("true") => Ok(fields),
        Some("false") => Err(ClientError::Rejected {
            kind: fields.get("error").cloned().unwrap_or_default(),
            detail: fields.get("detail").cloned().unwrap_or_default(),
        }),
        _ => Err(ClientError::Protocol("response lacks an `ok` field".to_owned())),
    }
}

impl ServeClient {
    /// Creates a client for the daemon at `socket`. No connection is made
    /// until the first operation.
    pub fn connect(socket: &Path) -> ServeClient {
        ServeClient {
            socket: socket.to_path_buf(),
        }
    }

    fn open(&self, request: &Request) -> Result<BufReader<UnixStream>, ClientError> {
        let mut stream = UnixStream::connect(&self.socket)?;
        stream.write_all(request.to_json().as_bytes())?;
        stream.write_all(b"\n")?;
        Ok(BufReader::new(stream))
    }

    fn request(&self, request: &Request) -> Result<Fields, ClientError> {
        let mut reader = self.open(request)?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol("daemon closed without replying".to_owned()));
        }
        check_ok(parse_line(line.trim())?)
    }

    /// Submits a job; returns its id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with the typed admission answer
    /// (`overloaded` / `quota` / `invalid` / `draining`), or transport
    /// failures.
    pub fn submit(
        &self,
        tenant: &str,
        priority: u8,
        deadline_secs: Option<u64>,
        spec: &JobSpec,
    ) -> Result<u64, ClientError> {
        let fields = self.request(&Request::Submit {
            tenant: tenant.to_owned(),
            priority,
            deadline_secs,
            spec: spec.clone(),
        })?;
        fields
            .get("job")
            .and_then(|j| j.parse().ok())
            .ok_or_else(|| ClientError::Protocol("submit reply lacks a job id".to_owned()))
    }

    /// Queries one job's state (`status`, `attempt`, and `result` once
    /// terminal).
    ///
    /// # Errors
    ///
    /// `unknown-job` rejection or transport failures.
    pub fn status(&self, job: u64) -> Result<Fields, ClientError> {
        self.request(&Request::Status { job })
    }

    /// Queries daemon health (queue depths, journal recovery counters).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn health(&self) -> Result<Fields, ClientError> {
        self.request(&Request::Health)
    }

    /// Cancels a queued or running job.
    ///
    /// # Errors
    ///
    /// `unknown-job` rejection or transport failures.
    pub fn cancel(&self, job: u64) -> Result<Fields, ClientError> {
        self.request(&Request::Cancel { job })
    }

    /// Asks the daemon to drain (checkpoint-park in-flight jobs and exit).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }

    /// Streams a job's events (`state`, `heartbeat`, `attempt-failed`)
    /// into `on_event` until the job is terminal; returns the final `done`
    /// event's fields (`status`, `result`).
    ///
    /// # Errors
    ///
    /// `unknown-job` rejection, a dropped connection (e.g. the daemon
    /// drained — the job is parked, not lost), or transport failures.
    pub fn wait(
        &self,
        job: u64,
        on_event: &mut dyn FnMut(&Fields),
    ) -> Result<Fields, ClientError> {
        let mut reader = self.open(&Request::Wait { job })?;
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Protocol(
                    "daemon closed the event stream (drained?)".to_owned(),
                ));
            }
            let fields = parse_line(line.trim())?;
            if fields.get("ok").map(String::as_str) == Some("false") {
                check_ok(fields)?;
                return Err(ClientError::Protocol("ok=false without error".to_owned()));
            }
            if fields.get("event").map(String::as_str) == Some("done") {
                return Ok(fields);
            }
            on_event(&fields);
        }
    }
}
