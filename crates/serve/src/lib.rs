//! # mempool-serve
//!
//! The simulation service behind the `mempool-serve` daemon: a persistent
//! process that accepts run/bench/campaign jobs over a local socket
//! (JSON-lines protocol `mempool-job-v1`), multiplexes them across a
//! supervised fleet of crash-isolated worker processes, and streams
//! progress and result documents back incrementally.
//!
//! Robustness is the design center, composed from pieces the suite already
//! trusts:
//!
//! - **Admission control** ([`Scheduler`]): a bounded queue with per-tenant
//!   quotas and priority classes. Overload is a typed
//!   [`Rejection::Overloaded`], never unbounded growth.
//! - **Supervision** ([`daemon`]): worker crash/panic/OOM classification
//!   ([`mempool_traffic::classify_exit`]), seeded exponential backoff and
//!   retry-from-last-checkpoint ([`mempool_traffic::RetryPolicy`]), and
//!   per-job wall-clock deadlines.
//! - **Graceful drain**: `SIGTERM` checkpoint-parks every in-flight job
//!   (workers write a final snapshot and exit with status 3); a restarted
//!   daemon replays its [`journal`] and resumes each job bit-identically,
//!   the same snapshot-determinism contract the checkpoint tests pin.
//!
//! The scheduler and journal are pure and portable (unit-tested directly);
//! the daemon and client are Unix-only (local socket + signals).

#![warn(missing_docs)]

pub mod journal;
pub mod protocol;
pub mod sched;

#[cfg(unix)]
pub mod client;
#[cfg(unix)]
pub mod daemon;

pub use journal::{Journal, JournalReplay, ReplayedJob};
pub use protocol::{
    BenchSpec, CampaignSpec, JobSpec, JobStatus, Request, RunSpec, PROTOCOL_VERSION,
};
pub use sched::{Rejection, Scheduler, SchedulerConfig};

#[cfg(unix)]
pub use client::{ClientError, ServeClient};
#[cfg(unix)]
pub use daemon::{run_daemon, DaemonConfig, DaemonSummary};
