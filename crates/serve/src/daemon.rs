//! The supervisor daemon: accepts jobs over a Unix socket, multiplexes
//! them across crash-isolated worker processes, and survives both worker
//! and daemon failures.
//!
//! One thread owns all state (scheduler, journal, worker fleet); everything
//! else — connection readers, connection writers, worker stdout pumps — is
//! a thin thread that forwards lines over a channel. The supervisor loop
//! alternates between draining that channel, accepting connections from the
//! nonblocking listener, enforcing wall-clock deadlines, and dispatching
//! queued jobs into free worker slots.
//!
//! Failure handling composes the shared [`mempool_traffic`] supervision
//! primitives: worker exits are classified with
//! [`classify_exit`](mempool_traffic::classify_exit) (`panic` / `signal` /
//! `timeout` / `oom` / `exit`), retried from the job's last checkpoint
//! under the seeded [`RetryPolicy`], and given up deterministically (budget
//! spent, or the same failure twice in a row). A drain (`SIGTERM` or the
//! `shutdown` op) `SIGTERM`s every worker, which checkpoint-parks its job
//! and exits with status 3; the journal then lets a restarted daemon
//! resume each job bit-identically.

use crate::journal::{self, Journal, ReplayedJob};
use crate::protocol::{event, json_str, resp_err, resp_ok, JobSpec, JobStatus, Request, PROTOCOL_VERSION};
use crate::sched::{Rejection, Scheduler, SchedulerConfig};
use mempool_traffic::{classify_exit, json_escape, FailureKind, RetryPolicy, TrialFailure};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Path of the Unix socket to listen on (a stale file is replaced).
    pub socket: PathBuf,
    /// Directory for the journal and per-job checkpoints (created if
    /// missing). Restarting with the same directory resumes parked work.
    pub state_dir: PathBuf,
    /// Worker processes run concurrently (0 = accept but never dispatch).
    pub worker_slots: usize,
    /// Admission policy (queue depth, tenant quotas).
    pub scheduler: SchedulerConfig,
    /// Retry/backoff policy applied to worker failures.
    pub retry: RetryPolicy,
    /// Wall-clock deadline per attempt for jobs that do not set their own
    /// (`None` = unbounded).
    pub default_deadline: Option<Duration>,
    /// Worker executable (invoked as `<cmd> job-worker` with the job
    /// document on stdin). `None` = the daemon's own executable.
    pub worker_cmd: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            socket: PathBuf::from("mempool-serve.sock"),
            state_dir: PathBuf::from("mempool-serve-state"),
            worker_slots: 2,
            scheduler: SchedulerConfig::default(),
            retry: RetryPolicy::default(),
            default_deadline: None,
            worker_cmd: None,
        }
    }
}

/// What the daemon had done by the time it drained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DaemonSummary {
    /// Jobs that finished with a result.
    pub completed: usize,
    /// Jobs that exhausted the retry policy.
    pub failed: usize,
    /// Jobs cancelled by clients.
    pub cancelled: usize,
    /// Jobs checkpoint-parked by the drain (resume on restart).
    pub parked: usize,
    /// Jobs still queued at drain (resume on restart).
    pub queued: usize,
    /// Journal lines skipped during startup recovery.
    pub journal_skipped: usize,
}

enum Msg {
    Request { reply: Sender<String>, line: String },
    Worker { job: u64, line: String },
    WorkerEof { job: u64 },
}

struct Job {
    rec: ReplayedJob,
    attempt: u32,
    failures: Vec<TrialFailure>,
    watchers: Vec<Sender<String>>,
    cancel_requested: bool,
}

struct WorkerProc {
    child: Child,
    deadline: Option<Instant>,
    killed_for_deadline: bool,
    parked: bool,
    result: Option<String>,
    error: Option<String>,
}

/// `Child::kill` delivers `SIGKILL`; a drain must deliver `SIGTERM` so the
/// worker gets to checkpoint-park before exiting.
fn sigterm(child: &Child) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    unsafe {
        kill(child.id() as i32, 15);
    }
}

struct Daemon {
    config: DaemonConfig,
    scheduler: Scheduler,
    journal: Journal,
    jobs: BTreeMap<u64, Job>,
    workers: BTreeMap<u64, WorkerProc>,
    /// Jobs waiting out a retry backoff, with their due time.
    retry_at: Vec<(Instant, u64)>,
    next_id: u64,
    journal_skipped: usize,
    draining: bool,
    events_tx: Sender<Msg>,
}

/// Runs the daemon until `shutdown` is set (or a client sends the
/// `shutdown` op), then drains: every in-flight job is checkpoint-parked
/// and the journal left ready for a restart to resume it.
///
/// # Errors
///
/// Startup I/O only (state dir, journal, socket). Runtime worker and
/// connection failures are handled, not raised.
pub fn run_daemon(config: DaemonConfig, shutdown: &AtomicBool) -> io::Result<DaemonSummary> {
    std::fs::create_dir_all(&config.state_dir)?;
    let journal_path = config.state_dir.join("jobs.journal");
    let mut replay = journal::replay(&journal_path)?;
    for warning in &replay.warnings {
        eprintln!("mempool-serve: {warning}");
    }
    // A `running` job's worker did not survive the restart; it re-queues
    // and resumes from its last checkpoint like any retried attempt.
    for job in &mut replay.jobs {
        if job.status == JobStatus::Running {
            job.status = JobStatus::Queued;
        }
    }
    let journal = Journal::rewrite(&journal_path, &replay.jobs)?;

    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket)?;
    listener.set_nonblocking(true)?;

    let (events_tx, events_rx): (Sender<Msg>, Receiver<Msg>) = mpsc::channel();
    let mut daemon = Daemon {
        scheduler: Scheduler::new(config.scheduler.clone()),
        config,
        journal,
        jobs: BTreeMap::new(),
        workers: BTreeMap::new(),
        retry_at: Vec::new(),
        next_id: replay.next_id,
        journal_skipped: replay.skipped,
        draining: false,
        events_tx,
    };
    for rec in replay.jobs {
        if !rec.status.is_terminal() {
            daemon.scheduler.admit_replayed(rec.id, &rec.tenant, rec.priority);
        }
        daemon.jobs.insert(
            rec.id,
            Job {
                rec,
                attempt: 1,
                failures: Vec::new(),
                watchers: Vec::new(),
                cancel_requested: false,
            },
        );
    }

    loop {
        match events_rx.recv_timeout(Duration::from_millis(20)) {
            Ok(msg) => {
                daemon.handle(msg);
                while let Ok(msg) = events_rx.try_recv() {
                    daemon.handle(msg);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        loop {
            match listener.accept() {
                Ok((stream, _)) => daemon.attach(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        if shutdown.load(Ordering::Relaxed) && !daemon.draining {
            daemon.enter_drain();
        }
        daemon.poll_deadlines();
        daemon.dispatch();
        if daemon.draining && daemon.workers.is_empty() {
            break;
        }
    }

    drop(listener);
    // Replies queued in the final iteration (the `shutdown` acknowledgment
    // in particular) sit in detached writer threads; give them a beat to
    // flush before process exit tears them down.
    std::thread::sleep(Duration::from_millis(100));
    let _ = std::fs::remove_file(&daemon.config.socket);
    let mut summary = DaemonSummary {
        journal_skipped: daemon.journal_skipped,
        ..DaemonSummary::default()
    };
    for job in daemon.jobs.values() {
        match job.rec.status {
            JobStatus::Completed => summary.completed += 1,
            JobStatus::Failed => summary.failed += 1,
            JobStatus::Cancelled => summary.cancelled += 1,
            JobStatus::Parked => summary.parked += 1,
            JobStatus::Queued | JobStatus::Running => summary.queued += 1,
        }
    }
    Ok(summary)
}

impl Daemon {
    fn ckpt_path(&self, id: u64) -> PathBuf {
        self.config.state_dir.join(format!("job-{id}.ckpt"))
    }

    /// Wires up a freshly accepted connection: a reader thread that
    /// forwards request lines to the supervisor, and a writer thread that
    /// drains the connection's reply channel. The writer stays alive as
    /// long as any reply sender (including `wait` watcher registrations)
    /// exists.
    fn attach(&mut self, stream: UnixStream) {
        let _ = stream.set_nonblocking(false);
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        let (reply_tx, reply_rx): (Sender<String>, Receiver<String>) = mpsc::channel();
        std::thread::spawn(move || {
            let mut out = BufWriter::new(write_half);
            while let Ok(line) = reply_rx.recv() {
                if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                    break;
                }
            }
        });
        let events = self.events_tx.clone();
        std::thread::spawn(move || {
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                if events
                    .send(Msg::Request {
                        reply: reply_tx.clone(),
                        line,
                    })
                    .is_err()
                {
                    break;
                }
            }
        });
    }

    fn handle(&mut self, msg: Msg) {
        match msg {
            Msg::Request { reply, line } => self.handle_request(&reply, &line),
            Msg::Worker { job, line } => self.handle_worker_line(job, &line),
            Msg::WorkerEof { job } => self.settle(job),
        }
    }

    fn handle_request(&mut self, reply: &Sender<String>, line: &str) {
        let request = match Request::from_json(line) {
            Ok(r) => r,
            Err(e) => {
                let _ = reply.send(resp_err("invalid", &e));
                return;
            }
        };
        match request {
            Request::Submit {
                tenant,
                priority,
                deadline_secs,
                spec,
            } => {
                let _ = reply.send(self.submit(tenant, priority, deadline_secs, spec));
            }
            Request::Status { job } => {
                let _ = reply.send(self.status_line(job));
            }
            Request::Health => {
                let _ = reply.send(self.health_line());
            }
            Request::Cancel { job } => {
                let _ = reply.send(self.cancel(job));
            }
            Request::Wait { job } => self.wait(reply, job),
            Request::Shutdown => {
                let _ = reply.send(resp_ok(&[("draining", "true".to_owned())]));
                self.enter_drain();
            }
        }
    }

    fn submit(
        &mut self,
        tenant: String,
        priority: u8,
        deadline_secs: Option<u64>,
        spec: JobSpec,
    ) -> String {
        if self.draining {
            return resp_err("draining", "daemon is draining; resubmit after restart");
        }
        if let Err(e) = spec.validate() {
            return resp_err("invalid", &e);
        }
        let id = self.next_id;
        match self.scheduler.admit(id, &tenant, priority) {
            Ok(()) => {}
            Err(r @ Rejection::Overloaded { .. }) => {
                return resp_err("overloaded", &r.to_string());
            }
            Err(r @ Rejection::QuotaExhausted { .. }) => {
                return resp_err("quota", &r.to_string());
            }
        }
        self.next_id += 1;
        let rec = ReplayedJob {
            id,
            tenant,
            priority,
            deadline_secs,
            spec,
            status: JobStatus::Queued,
            payload: None,
        };
        if let Err(e) = self.journal.record_job(&rec) {
            eprintln!("mempool-serve: journal write failed for job {id}: {e}");
        }
        self.jobs.insert(
            id,
            Job {
                rec,
                attempt: 1,
                failures: Vec::new(),
                watchers: Vec::new(),
                cancel_requested: false,
            },
        );
        resp_ok(&[
            ("job", id.to_string()),
            ("status", json_str("queued")),
        ])
    }

    fn status_line(&self, id: u64) -> String {
        let Some(job) = self.jobs.get(&id) else {
            return resp_err("unknown-job", &format!("no job {id}"));
        };
        let mut fields = vec![
            ("job", id.to_string()),
            ("status", json_str(&job.rec.status.to_string())),
            ("attempt", job.attempt.to_string()),
        ];
        if let (true, Some(payload)) = (job.rec.status.is_terminal(), &job.rec.payload) {
            // Nested documents travel as escaped string fields (the wire
            // dialect is flat); clients re-parse the string.
            fields.push(("result", json_str(payload)));
        }
        resp_ok(&fields)
    }

    fn health_line(&self) -> String {
        let mut counts: BTreeMap<JobStatus, usize> = BTreeMap::new();
        for job in self.jobs.values() {
            *counts.entry(job.rec.status).or_insert(0) += 1;
        }
        let count = |s: JobStatus| counts.get(&s).copied().unwrap_or(0).to_string();
        resp_ok(&[
            ("protocol", json_str(PROTOCOL_VERSION)),
            ("draining", self.draining.to_string()),
            ("worker_slots", self.config.worker_slots.to_string()),
            ("active", self.workers.len().to_string()),
            ("journal_skipped", self.journal_skipped.to_string()),
            ("queued", count(JobStatus::Queued)),
            ("running", count(JobStatus::Running)),
            ("parked", count(JobStatus::Parked)),
            ("completed", count(JobStatus::Completed)),
            ("failed", count(JobStatus::Failed)),
            ("cancelled", count(JobStatus::Cancelled)),
        ])
    }

    fn cancel(&mut self, id: u64) -> String {
        let Some(job) = self.jobs.get_mut(&id) else {
            return resp_err("unknown-job", &format!("no job {id}"));
        };
        if job.rec.status.is_terminal() {
            return resp_ok(&[
                ("job", id.to_string()),
                ("status", json_str(&job.rec.status.to_string())),
            ]);
        }
        job.cancel_requested = true;
        if self.scheduler.cancel_queued(id) || self.retry_at.iter().any(|&(_, j)| j == id) {
            self.finish(id, JobStatus::Cancelled, "{\"detail\":\"cancelled while queued\"}");
            return resp_ok(&[("job", id.to_string()), ("status", json_str("cancelled"))]);
        }
        if let Some(worker) = self.workers.get(&id) {
            // The worker parks on SIGTERM; settle() sees the cancel flag
            // and records the terminal state.
            sigterm(&worker.child);
            return resp_ok(&[("job", id.to_string()), ("status", json_str("cancelling"))]);
        }
        self.finish(id, JobStatus::Cancelled, "{\"detail\":\"cancelled\"}");
        resp_ok(&[("job", id.to_string()), ("status", json_str("cancelled"))])
    }

    fn wait(&mut self, reply: &Sender<String>, id: u64) {
        let Some(job) = self.jobs.get_mut(&id) else {
            let _ = reply.send(resp_err("unknown-job", &format!("no job {id}")));
            return;
        };
        if job.rec.status.is_terminal() {
            let payload = job.rec.payload.clone().unwrap_or_else(|| "{}".to_owned());
            let _ = reply.send(event(
                "done",
                id,
                &[
                    ("status", json_str(&job.rec.status.to_string())),
                    ("result", json_str(&payload)),
                ],
            ));
            return;
        }
        let _ = reply.send(event(
            "state",
            id,
            &[("status", json_str(&job.rec.status.to_string()))],
        ));
        job.watchers.push(reply.clone());
    }

    fn enter_drain(&mut self) {
        self.draining = true;
        for worker in self.workers.values() {
            sigterm(&worker.child);
        }
    }

    fn poll_deadlines(&mut self) {
        let now = Instant::now();
        for worker in self.workers.values_mut() {
            if let Some(deadline) = worker.deadline {
                if now >= deadline && !worker.killed_for_deadline {
                    worker.killed_for_deadline = true;
                    let _ = worker.child.kill();
                }
            }
        }
    }

    fn dispatch(&mut self) {
        if self.draining {
            return;
        }
        let now = Instant::now();
        let mut due = Vec::new();
        self.retry_at.retain(|&(at, id)| {
            if at <= now {
                due.push(id);
                false
            } else {
                true
            }
        });
        for id in due {
            self.scheduler.readmit(id);
        }
        while self.workers.len() < self.config.worker_slots {
            let Some(id) = self.scheduler.next() else {
                break;
            };
            if self.jobs.get(&id).is_none_or(|j| j.cancel_requested) {
                self.finish(id, JobStatus::Cancelled, "{\"detail\":\"cancelled while queued\"}");
                continue;
            }
            self.spawn(id);
        }
    }

    fn spawn(&mut self, id: u64) {
        let (attempt, body, deadline_secs) = {
            let job = &self.jobs[&id];
            (
                job.attempt,
                job.rec.spec.to_json_body(),
                job.rec.deadline_secs,
            )
        };
        let ckpt = self.ckpt_path(id);
        let cmd = match &self.config.worker_cmd {
            Some(cmd) => cmd.clone(),
            None => match std::env::current_exe() {
                Ok(exe) => exe,
                Err(e) => {
                    self.fail_attempt(id, FailureKind::Exit(-1), format!("no worker exe: {e}"));
                    return;
                }
            },
        };
        let spawned = Command::new(&cmd)
            .arg("job-worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn();
        let mut child = match spawned {
            Ok(child) => child,
            Err(e) => {
                self.fail_attempt(
                    id,
                    FailureKind::Exit(-1),
                    format!("spawn of {} failed: {e}", cmd.display()),
                );
                return;
            }
        };
        if let Some(mut stdin) = child.stdin.take() {
            let line = format!(
                "{{\"job\":{id},\"attempt\":{attempt},\"checkpoint\":\"{}\",{body}}}\n",
                json_escape(&ckpt.display().to_string()),
            );
            let _ = stdin.write_all(line.as_bytes());
        }
        if let Some(stdout) = child.stdout.take() {
            let events = self.events_tx.clone();
            std::thread::spawn(move || {
                for line in BufReader::new(stdout).lines() {
                    let Ok(line) = line else { break };
                    if events.send(Msg::Worker { job: id, line }).is_err() {
                        break;
                    }
                }
                let _ = events.send(Msg::WorkerEof { job: id });
            });
        }
        let deadline = deadline_secs
            .map(Duration::from_secs)
            .or(self.config.default_deadline)
            .map(|d| Instant::now() + d);
        self.workers.insert(
            id,
            WorkerProc {
                child,
                deadline,
                killed_for_deadline: false,
                parked: false,
                result: None,
                error: None,
            },
        );
        self.set_state(id, JobStatus::Running);
    }

    fn handle_worker_line(&mut self, id: u64, line: &str) {
        if let Some(cycle) = line.strip_prefix("heartbeat ") {
            let cycle = cycle.trim().to_owned();
            if let Some(job) = self.jobs.get_mut(&id) {
                let line = event("heartbeat", id, &[("cycle", cycle)]);
                job.watchers.retain(|w| w.send(line.clone()).is_ok());
            }
            return;
        }
        let Some(worker) = self.workers.get_mut(&id) else {
            return;
        };
        if line.starts_with("parked ") {
            worker.parked = true;
        } else if let Some(result) = line.strip_prefix("result ") {
            worker.result = Some(result.trim().to_owned());
        } else if let Some(error) = line.strip_prefix("error ") {
            worker.error = Some(error.trim().to_owned());
        }
    }

    /// A worker's stdout hit EOF: reap it and decide the job's fate.
    fn settle(&mut self, id: u64) {
        let Some(mut worker) = self.workers.remove(&id) else {
            return;
        };
        let status = match worker.child.wait() {
            Ok(status) => status,
            Err(e) => {
                self.fail_attempt(id, FailureKind::Exit(-1), format!("wait failed: {e}"));
                return;
            }
        };
        let cancel_requested = self
            .jobs
            .get(&id)
            .is_some_and(|job| job.cancel_requested);
        if worker.parked || status.code() == Some(3) {
            if cancel_requested {
                self.finish(id, JobStatus::Cancelled, "{\"detail\":\"cancelled while running\"}");
            } else if self.draining {
                self.set_state(id, JobStatus::Parked);
            } else {
                // A park outside a drain (e.g. a stray SIGTERM): the
                // checkpoint is intact, so just resume the job.
                self.scheduler.readmit(id);
                self.set_state(id, JobStatus::Queued);
            }
            return;
        }
        if status.success() {
            if let Some(result) = worker.result.take() {
                self.finish(id, JobStatus::Completed, &result);
            } else {
                self.fail_attempt(
                    id,
                    FailureKind::Exit(0),
                    "worker exited cleanly without a result".to_owned(),
                );
            }
            return;
        }
        if cancel_requested {
            self.finish(id, JobStatus::Cancelled, "{\"detail\":\"cancelled while running\"}");
            return;
        }
        let (kind, mut detail) = classify_exit(status, worker.killed_for_deadline);
        if let Some(error) = worker.error.take() {
            detail = error;
        }
        self.fail_attempt(id, kind, detail);
    }

    /// Records a failed attempt and either schedules the retry (seeded
    /// backoff, resume from checkpoint) or gives the job up.
    fn fail_attempt(&mut self, id: u64, kind: FailureKind, detail: String) {
        let give_up;
        {
            let Some(job) = self.jobs.get_mut(&id) else {
                return;
            };
            job.failures.push(TrialFailure {
                attempt: job.attempt,
                kind: kind.clone(),
                detail: detail.clone(),
            });
            let line = event(
                "attempt-failed",
                id,
                &[
                    ("attempt", job.attempt.to_string()),
                    ("kind", json_str(&kind.to_string())),
                    ("detail", json_str(&detail)),
                ],
            );
            job.watchers.retain(|w| w.send(line.clone()).is_ok());
            give_up = self.config.retry.give_up(&job.failures);
            if !give_up {
                job.attempt += 1;
            }
        }
        if give_up {
            let attempts = self.jobs[&id].failures.len();
            let payload = format!(
                "{{\"error\":\"{}\",\"kind\":\"{}\",\"attempts\":{attempts}}}",
                json_escape(&detail),
                json_escape(&kind.to_string()),
            );
            self.finish(id, JobStatus::Failed, &payload);
        } else {
            let failures = self.jobs[&id].failures.len() as u32;
            let delay = self.config.retry.delay(id, failures);
            self.retry_at.push((Instant::now() + delay, id));
            self.set_state(id, JobStatus::Queued);
        }
    }

    /// Journals and broadcasts a non-terminal state change.
    fn set_state(&mut self, id: u64, status: JobStatus) {
        if let Err(e) = self.journal.record_state(id, status) {
            eprintln!("mempool-serve: journal write failed for job {id}: {e}");
        }
        if let Some(job) = self.jobs.get_mut(&id) {
            job.rec.status = status;
            let line = event("state", id, &[("status", json_str(&status.to_string()))]);
            job.watchers.retain(|w| w.send(line.clone()).is_ok());
        }
    }

    /// Moves a job to a terminal state: journal, quota release, watcher
    /// notification, checkpoint cleanup (kept on failure for postmortems).
    fn finish(&mut self, id: u64, status: JobStatus, payload: &str) {
        self.scheduler.release(id);
        self.retry_at.retain(|&(_, j)| j != id);
        if let Err(e) = self.journal.record_done(id, status, payload) {
            eprintln!("mempool-serve: journal write failed for job {id}: {e}");
        }
        if let Some(job) = self.jobs.get_mut(&id) {
            job.rec.status = status;
            job.rec.payload = Some(payload.to_owned());
            let line = event(
                "done",
                id,
                &[
                    ("status", json_str(&status.to_string())),
                    ("result", json_str(payload)),
                ],
            );
            job.watchers.retain(|w| w.send(line.clone()).is_ok());
            job.watchers.clear();
        }
        if status != JobStatus::Failed {
            let ckpt = self.ckpt_path(id);
            let _ = std::fs::remove_file(&ckpt);
            let _ = std::fs::remove_file(ckpt.with_extension("manifest"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientError, ServeClient};
    use crate::protocol::RunSpec;
    use std::path::Path;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mempool-serve-daemon-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn run_spec() -> JobSpec {
        JobSpec::Run(RunSpec {
            config_spec: "topology=top1,small=true,scramble=false".to_owned(),
            program: "ecall\n".to_owned(),
            max_cycles: 1_000,
            checkpoint_every: 128,
            metrics: false,
        })
    }

    struct Harness {
        client: ServeClient,
        flag: Arc<AtomicBool>,
        thread: std::thread::JoinHandle<io::Result<DaemonSummary>>,
    }

    fn start(dir: &Path, config: DaemonConfig) -> Harness {
        let flag = Arc::new(AtomicBool::new(false));
        let socket = config.socket.clone();
        let thread = {
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || run_daemon(config, &flag))
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        while !socket.exists() {
            assert!(Instant::now() < deadline, "daemon never bound {dir:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
        Harness {
            client: ServeClient::connect(&socket),
            flag,
            thread,
        }
    }

    #[test]
    fn daemon_serves_health_rejects_garbage_and_drains_clean() {
        let dir = scratch("basic");
        let harness = start(
            &dir,
            DaemonConfig {
                socket: dir.join("serve.sock"),
                state_dir: dir.join("state"),
                worker_cmd: Some(PathBuf::from("/bin/false")),
                ..DaemonConfig::default()
            },
        );
        let health = harness.client.health().expect("health");
        assert_eq!(health["protocol"], PROTOCOL_VERSION);
        assert_eq!(health["draining"], "false");

        let bad = JobSpec::Run(RunSpec {
            program: "not an instruction".to_owned(),
            ..match run_spec() {
                JobSpec::Run(s) => s,
                _ => unreachable!(),
            }
        });
        match harness.client.submit("t", 0, None, &bad) {
            Err(ClientError::Rejected { kind, .. }) => assert_eq!(kind, "invalid"),
            other => panic!("expected invalid rejection, got {other:?}"),
        }

        harness.flag.store(true, Ordering::Relaxed);
        let summary = harness.thread.join().expect("join").expect("daemon");
        assert_eq!(summary, DaemonSummary::default());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failing_worker_is_retried_then_given_up_deterministically() {
        let dir = scratch("giveup");
        let harness = start(
            &dir,
            DaemonConfig {
                socket: dir.join("serve.sock"),
                state_dir: dir.join("state"),
                worker_slots: 1,
                // /bin/false fails identically every attempt, so the
                // repeat-failure rule gives up after exactly two.
                worker_cmd: Some(PathBuf::from("/bin/false")),
                // Enough backoff that the wait subscription registers
                // before the second (final) attempt fails.
                retry: RetryPolicy {
                    backoff_base_ms: 100,
                    backoff_cap_ms: 100,
                    ..RetryPolicy::default()
                },
                ..DaemonConfig::default()
            },
        );
        let id = harness
            .client
            .submit("team", 1, None, &run_spec())
            .expect("submit");
        let mut attempts_seen = 0;
        let done = harness
            .client
            .wait(id, &mut |fields| {
                if fields.get("event").map(String::as_str) == Some("attempt-failed") {
                    attempts_seen += 1;
                }
            })
            .expect("wait");
        assert_eq!(done["status"], "failed");
        assert!(attempts_seen >= 1, "attempt failures stream to waiters");
        let result = mempool_traffic::parse_flat_json(&done["result"]).expect("result parses");
        assert_eq!(result["attempts"], "2", "gave up on the second identical failure");
        assert_eq!(result["kind"], "exit(1)");
        let result = crate::journal::replay(&dir.join("state").join("jobs.journal"))
            .expect("journal replays");
        assert_eq!(result.jobs[0].status, JobStatus::Failed);

        harness.flag.store(true, Ordering::Relaxed);
        let summary = harness.thread.join().expect("join").expect("daemon");
        assert_eq!(summary.failed, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overload_quota_and_cancel_are_typed_over_the_socket() {
        let dir = scratch("overload");
        let harness = start(
            &dir,
            DaemonConfig {
                socket: dir.join("serve.sock"),
                state_dir: dir.join("state"),
                // No slots: everything stays queued, so the depth bound
                // and cancellation are exercised deterministically.
                worker_slots: 0,
                scheduler: SchedulerConfig {
                    queue_depth: 1,
                    default_quota: 8,
                    quotas: [("blocked".to_owned(), 0)].into_iter().collect(),
                },
                worker_cmd: Some(PathBuf::from("/bin/false")),
                ..DaemonConfig::default()
            },
        );
        match harness.client.submit("blocked", 0, None, &run_spec()) {
            Err(ClientError::Rejected { kind, .. }) => assert_eq!(kind, "quota"),
            other => panic!("expected quota rejection, got {other:?}"),
        }
        let first = harness.client.submit("a", 0, None, &run_spec()).expect("fits");
        match harness.client.submit("b", 0, None, &run_spec()) {
            Err(ClientError::Rejected { kind, .. }) => assert_eq!(kind, "overloaded"),
            other => panic!("expected overloaded rejection, got {other:?}"),
        }
        let cancelled = harness.client.cancel(first).expect("cancel");
        assert_eq!(cancelled["status"], "cancelled");
        let status = harness.client.status(first).expect("status");
        assert_eq!(status["status"], "cancelled");

        harness.flag.store(true, Ordering::Relaxed);
        let summary = harness.thread.join().expect("join").expect("daemon");
        assert_eq!(summary.cancelled, 1);
        assert_eq!(summary.queued, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
