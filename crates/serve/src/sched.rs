//! Admission control and dispatch ordering: a bounded queue with
//! per-tenant quotas, priority classes, and round-robin fairness inside a
//! class.
//!
//! The scheduler is deliberately pure — no clocks, no I/O — so every edge
//! case (zero quotas, starvation, cancellation, retry accounting) is unit
//! tested directly. The daemon layers time on top: backoff between retry
//! attempts is a dispatch-side delay, not a queue property.
//!
//! Accounting model: admission charges one slot of the tenant's quota and
//! one slot of the global queue depth. Dispatch ([`Scheduler::next`])
//! frees the queue slot but keeps the quota charged — a tenant's quota
//! bounds its total in-flight jobs (queued + running). Only a terminal
//! state ([`Scheduler::release`]) or cancellation of a queued job
//! ([`Scheduler::cancel_queued`]) refunds the quota. A retry or a park
//! resume re-enters the queue through [`Scheduler::readmit`], which
//! charges *nothing*: the job already holds its quota slot, so a crashing
//! job can never double-bill its tenant or be rejected mid-recovery.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Admission policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Global bound on queued (not yet dispatched) jobs; admission beyond
    /// it is a typed [`Rejection::Overloaded`].
    pub queue_depth: usize,
    /// In-flight quota for tenants without an explicit entry.
    pub default_quota: u32,
    /// Per-tenant quota overrides (a `0` entry blocks the tenant).
    pub quotas: BTreeMap<String, u32>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            queue_depth: 64,
            default_quota: 8,
            quotas: BTreeMap::new(),
        }
    }
}

/// Why a job was not admitted. Both variants are typed wire errors
/// (`overloaded` / `quota`), never silent queue growth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The global queue is full.
    Overloaded {
        /// The configured bound that was hit.
        depth: usize,
    },
    /// The tenant is at (or has no) quota.
    QuotaExhausted {
        /// The rejected tenant.
        tenant: String,
        /// The tenant's configured quota.
        quota: u32,
        /// In-flight jobs (queued + running) currently charged to it.
        in_flight: u32,
    },
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::Overloaded { depth } => {
                write!(f, "queue full ({depth} jobs); retry later")
            }
            Rejection::QuotaExhausted {
                tenant,
                quota,
                in_flight,
            } => write!(
                f,
                "tenant `{tenant}` at quota ({in_flight}/{quota} in flight)"
            ),
        }
    }
}

/// One priority class: a FIFO per tenant plus the round-robin rotation of
/// tenants that currently have queued work.
#[derive(Debug, Default)]
struct Class {
    queues: BTreeMap<String, VecDeque<u64>>,
    rotation: VecDeque<String>,
}

impl Class {
    fn enqueue(&mut self, tenant: &str, id: u64, front: bool) {
        let queue = self.queues.entry(tenant.to_owned()).or_default();
        if queue.is_empty() && !self.rotation.iter().any(|t| t == tenant) {
            self.rotation.push_back(tenant.to_owned());
        }
        if front {
            queue.push_front(id);
        } else {
            queue.push_back(id);
        }
    }

    fn pop(&mut self) -> Option<u64> {
        let tenant = self.rotation.pop_front()?;
        let queue = self.queues.get_mut(&tenant).expect("rotation tracks queues");
        let id = queue.pop_front().expect("rotated tenants have queued work");
        if queue.is_empty() {
            self.queues.remove(&tenant);
        } else {
            self.rotation.push_back(tenant);
        }
        Some(id)
    }

    fn remove(&mut self, tenant: &str, id: u64) -> bool {
        let Some(queue) = self.queues.get_mut(tenant) else {
            return false;
        };
        let Some(pos) = queue.iter().position(|&q| q == id) else {
            return false;
        };
        queue.remove(pos);
        if queue.is_empty() {
            self.queues.remove(tenant);
            self.rotation.retain(|t| t != tenant);
        }
        true
    }
}

/// The admission queue. See the module docs for the accounting model.
#[derive(Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    /// Priority class -> tenant queues (iterated highest class first).
    classes: BTreeMap<u8, Class>,
    /// Tenant and priority of every job the scheduler has ever admitted
    /// and not yet released.
    meta: BTreeMap<u64, (String, u8)>,
    /// In-flight (queued + running) jobs per tenant.
    in_flight: BTreeMap<String, u32>,
    queued: usize,
}

impl Scheduler {
    /// Creates an empty scheduler under `config`.
    pub fn new(config: SchedulerConfig) -> Scheduler {
        Scheduler {
            config,
            classes: BTreeMap::new(),
            meta: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            queued: 0,
        }
    }

    /// The tenant's configured quota.
    pub fn quota(&self, tenant: &str) -> u32 {
        self.config
            .quotas
            .get(tenant)
            .copied()
            .unwrap_or(self.config.default_quota)
    }

    /// In-flight (queued + running) jobs charged to `tenant`.
    pub fn in_flight(&self, tenant: &str) -> u32 {
        self.in_flight.get(tenant).copied().unwrap_or(0)
    }

    /// Jobs currently queued (dispatchable, not yet running).
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Admits a new job, charging quota and a queue slot.
    ///
    /// # Errors
    ///
    /// [`Rejection::QuotaExhausted`] (checked first, so a zero-quota
    /// tenant gets a deterministic answer even under overload) or
    /// [`Rejection::Overloaded`].
    pub fn admit(&mut self, id: u64, tenant: &str, priority: u8) -> Result<(), Rejection> {
        let quota = self.quota(tenant);
        let in_flight = self.in_flight(tenant);
        if in_flight >= quota {
            return Err(Rejection::QuotaExhausted {
                tenant: tenant.to_owned(),
                quota,
                in_flight,
            });
        }
        if self.queued >= self.config.queue_depth {
            return Err(Rejection::Overloaded {
                depth: self.config.queue_depth,
            });
        }
        self.charge(id, tenant, priority, false);
        Ok(())
    }

    /// Re-admits a journaled job during restart replay, bypassing the
    /// depth bound (the jobs were admitted before the restart; dropping
    /// them now would lose accepted work).
    pub fn admit_replayed(&mut self, id: u64, tenant: &str, priority: u8) {
        self.charge(id, tenant, priority, false);
    }

    fn charge(&mut self, id: u64, tenant: &str, priority: u8, front: bool) {
        self.classes
            .entry(priority)
            .or_default()
            .enqueue(tenant, id, front);
        self.meta.insert(id, (tenant.to_owned(), priority));
        *self.in_flight.entry(tenant.to_owned()).or_insert(0) += 1;
        self.queued += 1;
    }

    /// Returns a dispatched (running or parked) job to the front of its
    /// tenant's queue *without* charging quota or the depth bound — used
    /// for retry-from-checkpoint and park resume. Returns `false` for ids
    /// the scheduler is not tracking as dispatched.
    pub fn readmit(&mut self, id: u64) -> bool {
        let Some((tenant, priority)) = self.meta.get(&id).cloned() else {
            return false;
        };
        self.classes
            .entry(priority)
            .or_default()
            .enqueue(&tenant, id, true);
        self.queued += 1;
        true
    }

    /// Dispatches the next job: highest priority class first, round-robin
    /// across tenants within the class, FIFO within a tenant. The job's
    /// quota stays charged until [`release`](Scheduler::release).
    // Not an Iterator: dispatching mutates quota accounting, and callers
    // interleave it with admit/release between calls.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<u64> {
        let priority = self
            .classes
            .iter()
            .rev()
            .find(|(_, class)| !class.rotation.is_empty())
            .map(|(&p, _)| p)?;
        let id = self
            .classes
            .get_mut(&priority)
            .expect("class exists")
            .pop()?;
        self.queued -= 1;
        Some(id)
    }

    /// Cancels a queued job, refunding its quota and queue slot. Returns
    /// `false` when the job is not queued (already dispatched or unknown) —
    /// the caller then decides whether to kill a running worker.
    pub fn cancel_queued(&mut self, id: u64) -> bool {
        let Some((tenant, priority)) = self.meta.get(&id).cloned() else {
            return false;
        };
        let Some(class) = self.classes.get_mut(&priority) else {
            return false;
        };
        if !class.remove(&tenant, id) {
            return false;
        }
        self.queued -= 1;
        self.release(id);
        true
    }

    /// Releases a job's quota on any terminal state (completed, failed,
    /// cancelled-while-running). Idempotent for unknown ids.
    pub fn release(&mut self, id: u64) {
        let Some((tenant, _)) = self.meta.remove(&id) else {
            return;
        };
        match self.in_flight.get_mut(&tenant) {
            Some(n) if *n > 1 => *n -= 1,
            _ => {
                self.in_flight.remove(&tenant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(queue_depth: usize, default_quota: u32, quotas: &[(&str, u32)]) -> Scheduler {
        Scheduler::new(SchedulerConfig {
            queue_depth,
            default_quota,
            quotas: quotas
                .iter()
                .map(|(t, q)| ((*t).to_owned(), *q))
                .collect(),
        })
    }

    #[test]
    fn zero_quota_tenant_is_always_rejected() {
        let mut s = sched(4, 2, &[("blocked", 0)]);
        // Deterministically quota-typed, whether the queue is empty...
        assert!(matches!(
            s.admit(1, "blocked", 0),
            Err(Rejection::QuotaExhausted { quota: 0, in_flight: 0, .. })
        ));
        // ...or full (quota is checked first).
        s.admit(10, "open1", 5).expect("admit");
        s.admit(11, "open1", 5).expect("admit");
        s.admit(12, "open2", 5).expect("admit");
        s.admit(13, "open2", 5).expect("admit");
        assert_eq!(s.queued(), 4);
        assert!(matches!(
            s.admit(2, "blocked", 9),
            Err(Rejection::QuotaExhausted { quota: 0, .. })
        ));
        // Other tenants are bounded by the global depth instead.
        assert!(matches!(
            s.admit(3, "other", 0),
            Err(Rejection::Overloaded { depth: 4 })
        ));
    }

    #[test]
    fn equal_priority_tenants_interleave_without_starvation() {
        let mut s = sched(64, 32, &[]);
        for i in 0..4u64 {
            s.admit(i, "a", 1).expect("admit a");
        }
        for i in 10..14u64 {
            s.admit(i, "b", 1).expect("admit b");
        }
        // Despite tenant a's head start, dispatch alternates a/b.
        let order: Vec<u64> = std::iter::from_fn(|| s.next()).collect();
        assert_eq!(order, vec![0, 10, 1, 11, 2, 12, 3, 13]);

        // Sustained load: tenant a re-submits after every dispatch, yet
        // tenant b's two jobs still drain within a bounded number of
        // dispatches (no starvation).
        let mut s = sched(64, 64, &[]);
        s.admit(0, "a", 1).unwrap();
        s.admit(100, "b", 1).unwrap();
        s.admit(101, "b", 1).unwrap();
        let mut b_served = 0;
        for (step, next_a) in (0..6).zip(1u64..) {
            let id = s.next().expect("work queued");
            if id >= 100 {
                b_served += 1;
            }
            s.admit(next_a, "a", 1).expect("a resubmits");
            if b_served == 2 {
                assert!(step <= 3, "tenant b starved for {step} dispatches");
                return;
            }
        }
        panic!("tenant b starved under sustained load from tenant a");
    }

    #[test]
    fn higher_priority_class_dispatches_first() {
        let mut s = sched(16, 16, &[]);
        s.admit(1, "a", 0).unwrap();
        s.admit(2, "a", 7).unwrap();
        s.admit(3, "b", 3).unwrap();
        assert_eq!(s.next(), Some(2));
        assert_eq!(s.next(), Some(3));
        assert_eq!(s.next(), Some(1));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn cancelling_a_queued_job_refunds_quota_and_depth() {
        let mut s = sched(1, 1, &[]);
        s.admit(5, "a", 0).expect("admit");
        // Queue and quota are both full now.
        assert!(s.admit(6, "a", 0).is_err());
        assert!(s.cancel_queued(5), "queued job cancels");
        assert_eq!(s.queued(), 0);
        assert_eq!(s.in_flight("a"), 0);
        // Both the slot and the quota came back.
        s.admit(6, "a", 0).expect("slot refunded");
        // A dispatched job is no longer cancellable at queue level.
        assert_eq!(s.next(), Some(6));
        assert!(!s.cancel_queued(6));
        // Unknown ids are a no-op.
        assert!(!s.cancel_queued(99));
    }

    #[test]
    fn retry_readmission_does_not_double_charge_quota() {
        let mut s = sched(8, 1, &[]);
        s.admit(7, "a", 2).expect("admit");
        assert_eq!(s.next(), Some(7));
        assert_eq!(s.in_flight("a"), 1, "running job stays charged");
        // The worker crashed; the supervisor re-queues the attempt. The
        // tenant is at quota (1/1) — readmission must still succeed and
        // must not charge a second slot.
        assert!(s.readmit(7));
        assert_eq!(s.in_flight("a"), 1, "retry is not a second job");
        assert_eq!(s.queued(), 1);
        // A genuinely new job is still quota-bounded while the retry is
        // in flight...
        assert!(matches!(
            s.admit(8, "a", 2),
            Err(Rejection::QuotaExhausted { in_flight: 1, .. })
        ));
        // ...and the retried attempt dispatches again, then releases once.
        assert_eq!(s.next(), Some(7));
        s.release(7);
        assert_eq!(s.in_flight("a"), 0);
        s.admit(8, "a", 2).expect("quota free after release");
        // readmit of an unknown id is refused.
        assert!(!s.readmit(7));
    }

    #[test]
    fn readmitted_jobs_resume_at_the_front_of_their_tenant_queue() {
        let mut s = sched(8, 8, &[]);
        s.admit(1, "a", 0).unwrap();
        s.admit(2, "a", 0).unwrap();
        assert_eq!(s.next(), Some(1));
        // Job 1 crashes and is readmitted: it outranks job 2 (FIFO would
        // make the retry wait behind the whole backlog).
        assert!(s.readmit(1));
        assert_eq!(s.next(), Some(1));
        assert_eq!(s.next(), Some(2));
    }

    #[test]
    fn replay_admission_bypasses_the_depth_bound() {
        let mut s = sched(1, 4, &[]);
        s.admit_replayed(1, "a", 0);
        s.admit_replayed(2, "a", 0);
        assert_eq!(s.queued(), 2, "replay exceeds depth without rejection");
        assert_eq!(s.in_flight("a"), 2);
        assert!(matches!(s.admit(3, "a", 0), Err(Rejection::Overloaded { .. })));
    }
}
