//! End-to-end kernel runs on the reduced (64-core) cluster: every kernel
//! must produce bit-exact golden results on every topology, with and
//! without the hybrid addressing scrambler, and the cycle counts must show
//! the paper's qualitative ordering.

use mempool::{ClusterConfig, Topology};
use mempool_kernels::{run_kernel, Conv2d, Dct, Geometry, Matmul};

const SEED: u64 = 2021;
const BUDGET: u64 = 30_000_000;

fn config(topology: Topology, scrambled: bool) -> ClusterConfig {
    let mut c = ClusterConfig::small(topology);
    if !scrambled {
        c.seq_region_bytes = None;
    }
    c
}

fn geom() -> Geometry {
    Geometry::from_config(&ClusterConfig::small(Topology::TopH), 4096)
}

#[test]
fn matmul_correct_on_all_topologies() {
    let kernel = Matmul::new(geom(), 32).unwrap();
    for topo in Topology::all() {
        for scrambled in [true, false] {
            let run = run_kernel(&kernel, config(topo, scrambled), SEED, BUDGET)
                .unwrap_or_else(|e| panic!("{topo} scrambled={scrambled}: {e}"));
            assert!(run.cycles > 0);
        }
    }
}

#[test]
fn conv2d_correct_on_all_topologies() {
    let kernel = Conv2d::auto(geom()).unwrap();
    for topo in Topology::all() {
        for scrambled in [true, false] {
            run_kernel(&kernel, config(topo, scrambled), SEED, BUDGET)
                .unwrap_or_else(|e| panic!("{topo} scrambled={scrambled}: {e}"));
        }
    }
}

#[test]
fn dct_correct_on_all_topologies() {
    let kernel = Dct::new(geom()).unwrap();
    for topo in Topology::all() {
        for scrambled in [true, false] {
            run_kernel(&kernel, config(topo, scrambled), SEED, BUDGET)
                .unwrap_or_else(|e| panic!("{topo} scrambled={scrambled}: {e}"));
        }
    }
}

#[test]
fn dct_scrambling_keeps_accesses_local() {
    let kernel = Dct::new(geom()).unwrap();
    let on = run_kernel(&kernel, config(Topology::TopH, true), SEED, BUDGET).unwrap();
    let off = run_kernel(&kernel, config(Topology::TopH, false), SEED, BUDGET).unwrap();
    // With scrambling, essentially all data accesses are local.
    assert!(
        on.stats.locality() > 0.95,
        "scrambled locality {}",
        on.stats.locality()
    );
    assert!(
        off.stats.locality() < 0.2,
        "unscrambled locality {}",
        off.stats.locality()
    );
    // The paper: without scrambling the stacks spread over all tiles,
    // giving a significant performance penalty.
    assert!(
        off.cycles > on.cycles,
        "no dct penalty without scrambling: {} vs {}",
        off.cycles,
        on.cycles
    );
}

#[test]
fn matmul_ideal_is_fastest_top1_slowest() {
    // Fig. 7, matmul column: baseline ≥ TopH ≥ Top4 ≥ Top1 (in performance,
    // i.e. reversed in cycles).
    let kernel = Matmul::new(geom(), 32).unwrap();
    let cycles = |topo| {
        run_kernel(&kernel, config(topo, true), SEED, BUDGET)
            .unwrap()
            .cycles
    };
    let ideal = cycles(Topology::Ideal);
    let top1 = cycles(Topology::Top1);
    let top4 = cycles(Topology::Top4);
    let toph = cycles(Topology::TopH);
    assert!(ideal <= toph, "ideal {ideal} vs topH {toph}");
    assert!(toph <= top4 * 11 / 10, "topH {toph} vs top4 {top4}");
    assert!(top4 < top1, "top4 {top4} vs top1 {top1}");
    // "outperform Top1 by a factor of three in the extreme cases" — allow
    // a loose lower bound here (reduced cluster).
    assert!(
        top1 as f64 > 1.5 * toph as f64,
        "top1 {top1} not clearly behind topH {toph}"
    );
}

#[test]
fn dct_scrambled_matches_baseline() {
    // Fig. 7: "With dct, we match the baseline since we only do local
    // accesses" — all topologies with scrambling perform equally well.
    let kernel = Dct::new(geom()).unwrap();
    let cycles = |topo| {
        run_kernel(&kernel, config(topo, true), SEED, BUDGET)
            .unwrap()
            .cycles
    };
    let ideal = cycles(Topology::Ideal);
    let toph = cycles(Topology::TopH);
    let top1 = cycles(Topology::Top1);
    assert!(
        (toph as f64) < 1.10 * ideal as f64,
        "topH dct {toph} vs ideal {ideal}"
    );
    assert!(
        (top1 as f64) < 1.15 * ideal as f64,
        "top1 dct {top1} vs ideal {ideal}"
    );
}

#[test]
fn axpy_and_dotprod_correct_everywhere() {
    use mempool_kernels::{Axpy, DotProduct};
    let axpy = Axpy::new(geom(), 4096, -3).unwrap();
    let dot = DotProduct::new(geom(), 4096).unwrap();
    for topo in [Topology::TopH, Topology::Top1, Topology::Ideal] {
        run_kernel(&axpy, config(topo, true), SEED, BUDGET)
            .unwrap_or_else(|e| panic!("axpy on {topo}: {e}"));
        run_kernel(&dot, config(topo, true), SEED, BUDGET)
            .unwrap_or_else(|e| panic!("dotprod on {topo}: {e}"));
    }
}

#[test]
fn stream_kernel_constructors_validate() {
    use mempool_kernels::{Axpy, DotProduct};
    assert!(Axpy::new(geom(), 0, 1).is_err());
    assert!(Axpy::new(geom(), 63, 1).is_err()); // not a multiple of 64 cores
    assert!(Axpy::new(geom(), 1 << 22, 1).is_err()); // too big
    assert!(DotProduct::new(geom(), 4096).is_ok());
}

#[test]
fn histogram_correct_and_hot_variant_slower() {
    use mempool_kernels::Histogram;
    let uniform = Histogram::new(geom(), 8192).unwrap();
    let hot = Histogram::hot(geom(), 8192, 7).unwrap();
    let u = run_kernel(&uniform, config(Topology::TopH, true), SEED, BUDGET).unwrap();
    let h = run_kernel(&hot, config(Topology::TopH, true), SEED, BUDGET).unwrap();
    // A single hot bin serializes at one bank: it must be clearly slower
    // than uniformly distributed bins.
    assert!(
        h.cycles > 2 * u.cycles,
        "hot-bin contention not visible: {} vs {}",
        h.cycles,
        u.cycles
    );
}

#[test]
fn transpose_correct_on_all_topologies() {
    use mempool_kernels::Transpose;
    let kernel = Transpose::new(geom(), 64).unwrap();
    for topo in Topology::all() {
        run_kernel(&kernel, config(topo, true), SEED, BUDGET)
            .unwrap_or_else(|e| panic!("transpose on {topo}: {e}"));
    }
}

#[test]
fn every_kernel_also_passes_on_the_functional_simulator() {
    use mempool_kernels::{run_kernel_functional, Axpy, DotProduct, Histogram, Transpose};
    let g = geom();
    let kernels: Vec<Box<dyn mempool_kernels::Kernel>> = vec![
        Box::new(Matmul::new(g, 32).unwrap()),
        Box::new(Conv2d::auto(g).unwrap()),
        Box::new(Dct::new(g).unwrap()),
        Box::new(Axpy::new(g, 4096, 5).unwrap()),
        Box::new(DotProduct::new(g, 4096).unwrap()),
        Box::new(Histogram::new(g, 8192).unwrap()),
        Box::new(Transpose::new(g, 64).unwrap()),
    ];
    for kernel in &kernels {
        run_kernel_functional(kernel.as_ref(), config(Topology::TopH, true), SEED, 10_000_000)
            .unwrap_or_else(|e| panic!("functional {}: {e}", kernel.name()));
    }
}

#[test]
fn timed_and_functional_backends_agree_bit_for_bit() {
    // Run matmul on both backends and compare the whole output matrix
    // (the golden checks already pass on both; this pins cross-backend
    // equality of the result region explicitly).
    use mempool::L1Memory;
    let g = geom();
    let kernel = Matmul::new(g, 32).unwrap();
    let cfg = config(Topology::TopH, true);

    let program = mempool_riscv::assemble(&mempool_kernels::Kernel::source(&kernel)).unwrap();
    let mut cluster = mempool::Cluster::snitch(cfg).unwrap();
    cluster.load_program(&program).unwrap();
    mempool_kernels::Kernel::init(&kernel, &mut cluster, SEED);
    cluster.run(BUDGET).unwrap();

    let mut func = mempool::FunctionalSim::new(cfg).unwrap();
    func.load_program(&program).unwrap();
    mempool_kernels::Kernel::init(&kernel, &mut func, SEED);
    func.run(10_000_000).unwrap();

    let base = g.data_base() + 2 * 32 * 32 * 4; // the C matrix
    assert_eq!(
        cluster.read_words(base, 32 * 32),
        func.read_words(base, 32 * 32)
    );
}

#[test]
fn fft_correct_on_cluster_and_functional_backends() {
    use mempool_kernels::{run_kernel_functional, Fft};
    let kernel = Fft::new(geom(), 512).unwrap();
    // Functional backend first (fast); then the cycle-accurate cluster on
    // two topologies — log2(512) = 9 barriers plus strided butterflies.
    run_kernel_functional(&kernel, config(Topology::TopH, true), SEED, 50_000_000)
        .unwrap_or_else(|e| panic!("functional fft: {e}"));
    for topo in [Topology::TopH, Topology::Ideal] {
        run_kernel(&kernel, config(topo, true), SEED, BUDGET)
            .unwrap_or_else(|e| panic!("fft on {topo}: {e}"));
    }
}
