//! Streaming kernels beyond the paper's three benchmarks: `axpy` (pure
//! element-wise streaming over the interleaved region) and `dotprod` (a
//! parallel reduction finishing with one AMO per core). Useful as extra
//! workloads for the ablation studies and as API examples.

use crate::golden;
use crate::matmul::BuildKernelError;
use crate::runtime::{emit_epilogue, emit_prologue};
use crate::{CheckKernelError, Geometry, Kernel};
use mempool::L1Memory;
use mempool_rng::StdRng;
use mempool_rng::{Rng, SeedableRng};

/// `y[i] = a·x[i] + y[i]` over `len` elements split contiguously across all
/// cores. Both vectors live in the shared interleaved region, so accesses
/// are predominantly remote on every topology — a bandwidth benchmark.
#[derive(Debug, Clone)]
pub struct Axpy {
    geom: Geometry,
    len: usize,
    a: i32,
}

impl Axpy {
    /// Creates an AXPY of `len` elements with scalar `a`.
    ///
    /// # Errors
    ///
    /// `len` must be divisible by the core count and both vectors must fit
    /// in the shared region.
    pub fn new(geom: Geometry, len: usize, a: i32) -> Result<Axpy, BuildKernelError> {
        if len == 0 || !len.is_multiple_of(geom.num_cores()) {
            return Err(BuildKernelError::new(
                "len must be a nonzero multiple of the core count",
            ));
        }
        if (2 * len * 4) as u32 > geom.data_bytes() {
            return Err(BuildKernelError::new("vectors exceed the shared region"));
        }
        Ok(Axpy { geom, len, a })
    }

    fn x_base(&self) -> u32 {
        self.geom.data_base()
    }

    fn y_base(&self) -> u32 {
        self.x_base() + (self.len * 4) as u32
    }

    fn inputs(&self, seed: u64) -> (Vec<i32>, Vec<i32>) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6178_7079);
        let x = (0..self.len).map(|_| rng.gen_range(-1000..1000)).collect();
        let y = (0..self.len).map(|_| rng.gen_range(-1000..1000)).collect();
        (x, y)
    }
}

impl Kernel for Axpy {
    fn name(&self) -> &'static str {
        "axpy"
    }

    fn geometry(&self) -> &Geometry {
        &self.geom
    }

    fn source(&self) -> String {
        let per_core = self.len / self.geom.num_cores();
        format!(
            "{prologue}\
             \tli   t0, {per_core}\n\
             \tmul  t1, s0, t0            # first element\n\
             \tslli t1, t1, 2\n\
             \tli   t2, {x_base}\n\
             \tadd  t2, t2, t1            # x pointer\n\
             \tli   t3, {y_base}\n\
             \tadd  t3, t3, t1            # y pointer\n\
             \tli   t4, {per_core}\n\
             \tli   t5, {a}\n\
             loop:\n\
             \tlw   a0, (t2)\n\
             \tlw   a1, (t3)\n\
             \tmul  a0, a0, t5\n\
             \tadd  a0, a0, a1\n\
             \tsw   a0, (t3)\n\
             \taddi t2, t2, 4\n\
             \taddi t3, t3, 4\n\
             \taddi t4, t4, -1\n\
             \tbnez t4, loop\n\
             {epilogue}",
            prologue = emit_prologue(&self.geom),
            epilogue = emit_epilogue(),
            x_base = self.x_base(),
            y_base = self.y_base(),
            a = self.a,
        )
    }

    fn init(&self, cluster: &mut dyn L1Memory, seed: u64) {
        let (x, y) = self.inputs(seed);
        cluster.write_words(self.x_base(), &x.iter().map(|&v| v as u32).collect::<Vec<_>>()).expect("kernel layout fits in L1");
        cluster.write_words(self.y_base(), &y.iter().map(|&v| v as u32).collect::<Vec<_>>()).expect("kernel layout fits in L1");
    }

    fn check(&self, cluster: &dyn L1Memory, seed: u64) -> Result<(), CheckKernelError> {
        let (x, y) = self.inputs(seed);
        let got = cluster.read_words(self.y_base(), self.len).expect("kernel layout fits in L1");
        for i in 0..self.len {
            let expect = x[i].wrapping_mul(self.a).wrapping_add(y[i]);
            if expect as u32 != got[i] {
                return Err(CheckKernelError::new(format!(
                    "y[{i}]: expected {expect}, got {}",
                    got[i] as i32
                )));
            }
        }
        Ok(())
    }
}

/// `result = Σ x[i]·y[i]`: each core accumulates its contiguous chunk in a
/// register and publishes one `amoadd.w` — a reduction benchmark with a
/// single hot bank at the very end.
#[derive(Debug, Clone)]
pub struct DotProduct {
    geom: Geometry,
    len: usize,
}

impl DotProduct {
    /// Creates a dot product of `len` elements.
    ///
    /// # Errors
    ///
    /// Same constraints as [`Axpy::new`] (plus one accumulator word).
    pub fn new(geom: Geometry, len: usize) -> Result<DotProduct, BuildKernelError> {
        if len == 0 || !len.is_multiple_of(geom.num_cores()) {
            return Err(BuildKernelError::new(
                "len must be a nonzero multiple of the core count",
            ));
        }
        if (2 * len * 4 + 4) as u32 > geom.data_bytes() {
            return Err(BuildKernelError::new("vectors exceed the shared region"));
        }
        Ok(DotProduct { geom, len })
    }

    fn x_base(&self) -> u32 {
        self.geom.data_base()
    }

    fn y_base(&self) -> u32 {
        self.x_base() + (self.len * 4) as u32
    }

    /// Address of the scalar result.
    pub fn result_addr(&self) -> u32 {
        self.y_base() + (self.len * 4) as u32
    }

    fn inputs(&self, seed: u64) -> (Vec<i32>, Vec<i32>) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x646f_7470);
        let x = (0..self.len).map(|_| rng.gen_range(-100..100)).collect();
        let y = (0..self.len).map(|_| rng.gen_range(-100..100)).collect();
        (x, y)
    }
}

impl Kernel for DotProduct {
    fn name(&self) -> &'static str {
        "dotprod"
    }

    fn geometry(&self) -> &Geometry {
        &self.geom
    }

    fn source(&self) -> String {
        let per_core = self.len / self.geom.num_cores();
        format!(
            "{prologue}\
             \tli   t0, {per_core}\n\
             \tmul  t1, s0, t0\n\
             \tslli t1, t1, 2\n\
             \tli   t2, {x_base}\n\
             \tadd  t2, t2, t1\n\
             \tli   t3, {y_base}\n\
             \tadd  t3, t3, t1\n\
             \tli   t4, {per_core}\n\
             \tli   t5, 0                 # partial sum\n\
             loop:\n\
             \tlw   a0, (t2)\n\
             \tlw   a1, (t3)\n\
             \tmul  a0, a0, a1\n\
             \tadd  t5, t5, a0\n\
             \taddi t2, t2, 4\n\
             \taddi t3, t3, 4\n\
             \taddi t4, t4, -1\n\
             \tbnez t4, loop\n\
             \tli   t6, {result}\n\
             \tamoadd.w zero, t5, (t6)\n\
             {epilogue}",
            prologue = emit_prologue(&self.geom),
            epilogue = emit_epilogue(),
            x_base = self.x_base(),
            y_base = self.y_base(),
            result = self.result_addr(),
        )
    }

    fn init(&self, cluster: &mut dyn L1Memory, seed: u64) {
        let (x, y) = self.inputs(seed);
        cluster.write_words(self.x_base(), &x.iter().map(|&v| v as u32).collect::<Vec<_>>()).expect("kernel layout fits in L1");
        cluster.write_words(self.y_base(), &y.iter().map(|&v| v as u32).collect::<Vec<_>>()).expect("kernel layout fits in L1");
        cluster.write_word(self.result_addr(), 0).expect("in range");
    }

    fn check(&self, cluster: &dyn L1Memory, seed: u64) -> Result<(), CheckKernelError> {
        let (x, y) = self.inputs(seed);
        let expect = golden::dotprod_i32(&x, &y);
        let got = cluster
            .read_word(self.result_addr())
            .expect("result in range");
        if expect as u32 != got {
            return Err(CheckKernelError::new(format!(
                "dot product: expected {expect}, got {}",
                got as i32
            )));
        }
        Ok(())
    }
}
