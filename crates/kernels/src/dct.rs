//! `dct`: 8×8 two-dimensional DCT-II on blocks residing in local memory,
//! with intermediate results on the stack — "all accesses are local, given
//! the stack is mapped to local banks" (§V-C). Without the scrambling
//! logic, "the stacks become spread over all tiles, leading to a
//! significant performance penalty".

use crate::golden::{dct8x8_q7, dct_coefficients};
use crate::matmul::BuildKernelError;
use crate::runtime::{emit_epilogue, emit_prologue};
use crate::{CheckKernelError, Geometry, Kernel};
use mempool::L1Memory;
use mempool_rng::StdRng;
use mempool_rng::{Rng, SeedableRng};

/// Per-tile sequential-region layout of the DCT kernel:
/// `[0, 256)` — the shared Q7 coefficient table (64 words);
/// then one `SLICE`-byte slice per lane: input block (256 B), output block
/// (256 B), stack (remainder; the 8×8 intermediate lives there).
const COEFF_BYTES: u32 = 256;
const BLOCK_BYTES: u32 = 256;
/// Minimum per-lane slice: in + out + intermediate on the stack.
const MIN_SLICE: u32 = 3 * BLOCK_BYTES;

/// The `dct` benchmark: every core transforms one 8×8 block held in its own
/// tile's sequential region.
#[derive(Debug, Clone)]
pub struct Dct {
    geom: Geometry,
    slice: u32,
}

impl Dct {
    /// Creates the DCT kernel for the given geometry.
    ///
    /// # Errors
    ///
    /// The sequential region must hold the coefficient table plus a
    /// ≥ 768-byte slice per core.
    pub fn new(geom: Geometry) -> Result<Dct, BuildKernelError> {
        let avail = geom
            .seq_bytes.saturating_sub(COEFF_BYTES);
        let slice = avail / geom.cores_per_tile as u32;
        if slice < MIN_SLICE {
            return Err(BuildKernelError::new(format!(
                "sequential region too small: per-core slice {slice} B < {MIN_SLICE} B"
            )));
        }
        Ok(Dct { geom, slice })
    }

    fn coeff_addr(&self, tile: usize) -> u32 {
        self.geom.seq_base(tile)
    }

    fn in_addr(&self, core: usize) -> u32 {
        let tile = core / self.geom.cores_per_tile;
        let lane = (core % self.geom.cores_per_tile) as u32;
        self.geom.seq_base(tile) + COEFF_BYTES + lane * self.slice
    }

    fn out_addr(&self, core: usize) -> u32 {
        self.in_addr(core) + BLOCK_BYTES
    }

    fn block(&self, core: usize, seed: u64) -> Vec<i32> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6463_7400 ^ core as u64);
        (0..64).map(|_| rng.gen_range(-128..128)).collect()
    }
}

impl Kernel for Dct {
    fn name(&self) -> &'static str {
        "dct"
    }

    fn geometry(&self) -> &Geometry {
        &self.geom
    }

    fn source(&self) -> String {
        let log2_seq = self.geom.seq_bytes.trailing_zeros();
        format!(
            "{prologue}\
             \t# s3 = coefficient table (tile base), s4 = in, s5 = out\n\
             \tslli s3, s1, {log2_seq}\n\
             \tli   t0, {slice}\n\
             \tmul  t1, s2, t0\n\
             \taddi t1, t1, {coeff_bytes}\n\
             \tadd  s4, s3, t1\n\
             \taddi s5, s4, {block_bytes}\n\
             \t# stack at the top of the slice; 256 B intermediate on it\n\
             \tadd  sp, s4, t0\n\
             \taddi sp, sp, -256\n\
             \tmv   s6, sp                # tmp matrix base\n\
             \tli   a5, 8\n\
             \t# pass 1: tmp[i][j] = (Σk C[i][k]·in[k][j]) >> 7\n\
             \tli   s7, 0\n\
             p1_i:\n\
             \tli   s8, 0\n\
             p1_j:\n\
             \tli   t6, 0\n\
             \tli   s9, 0\n\
             \tslli t0, s7, 5\n\
             \tadd  t0, t0, s3            # &C[i][0]\n\
             \tslli t1, s8, 2\n\
             \tadd  t1, t1, s4            # &in[0][j]\n\
             p1_k:\n\
             \tlw   a0, (t0)\n\
             \tlw   a1, (t1)\n\
             \taddi t0, t0, 4\n\
             \taddi t1, t1, 32\n\
             \tmul  a2, a0, a1\n\
             \tadd  t6, t6, a2\n\
             \taddi s9, s9, 1\n\
             \tblt  s9, a5, p1_k\n\
             \tsrai t6, t6, 7\n\
             \tslli t2, s7, 5\n\
             \tslli t3, s8, 2\n\
             \tadd  t2, t2, t3\n\
             \tadd  t2, t2, s6\n\
             \tsw   t6, (t2)\n\
             \taddi s8, s8, 1\n\
             \tblt  s8, a5, p1_j\n\
             \taddi s7, s7, 1\n\
             \tblt  s7, a5, p1_i\n\
             \t# pass 2: out[i][j] = (Σk tmp[i][k]·C[j][k]) >> 7\n\
             \tli   s7, 0\n\
             p2_i:\n\
             \tli   s8, 0\n\
             p2_j:\n\
             \tli   t6, 0\n\
             \tli   s9, 0\n\
             \tslli t0, s7, 5\n\
             \tadd  t0, t0, s6            # &tmp[i][0]\n\
             \tslli t1, s8, 5\n\
             \tadd  t1, t1, s3            # &C[j][0]\n\
             p2_k:\n\
             \tlw   a0, (t0)\n\
             \tlw   a1, (t1)\n\
             \taddi t0, t0, 4\n\
             \taddi t1, t1, 4\n\
             \tmul  a2, a0, a1\n\
             \tadd  t6, t6, a2\n\
             \taddi s9, s9, 1\n\
             \tblt  s9, a5, p2_k\n\
             \tsrai t6, t6, 7\n\
             \tslli t2, s7, 5\n\
             \tslli t3, s8, 2\n\
             \tadd  t2, t2, t3\n\
             \tadd  t2, t2, s5\n\
             \tsw   t6, (t2)\n\
             \taddi s8, s8, 1\n\
             \tblt  s8, a5, p2_j\n\
             \taddi s7, s7, 1\n\
             \tblt  s7, a5, p2_i\n\
             {epilogue}",
            prologue = emit_prologue(&self.geom),
            epilogue = emit_epilogue(),
            slice = self.slice,
            coeff_bytes = COEFF_BYTES,
            block_bytes = BLOCK_BYTES,
        )
    }

    fn init(&self, cluster: &mut dyn L1Memory, seed: u64) {
        let coeffs: Vec<u32> = dct_coefficients()
            .iter()
            .flatten()
            .map(|&c| c as u32)
            .collect();
        for tile in 0..self.geom.num_tiles {
            cluster.write_words(self.coeff_addr(tile), &coeffs).expect("kernel layout fits in L1");
        }
        for core in 0..self.geom.num_cores() {
            let block: Vec<u32> = self.block(core, seed).iter().map(|&x| x as u32).collect();
            cluster.write_words(self.in_addr(core), &block).expect("kernel layout fits in L1");
            cluster.write_words(self.out_addr(core), &vec![0; 64]).expect("kernel layout fits in L1");
        }
    }

    fn check(&self, cluster: &dyn L1Memory, seed: u64) -> Result<(), CheckKernelError> {
        for core in 0..self.geom.num_cores() {
            let expect = dct8x8_q7(&self.block(core, seed));
            let got = cluster.read_words(self.out_addr(core), 64).expect("kernel layout fits in L1");
            for (i, (&e, &g)) in expect.iter().zip(&got).enumerate() {
                if e as u32 != g {
                    return Err(CheckKernelError::new(format!(
                        "core {core} out[{}][{}]: expected {e}, got {}",
                        i / 8,
                        i % 8,
                        g as i32
                    )));
                }
            }
        }
        Ok(())
    }
}
