//! Memory-layout geometry shared by all kernels.
//!
//! Kernels compute addresses against the *programmer-view* layout: per-tile
//! sequential regions first (stacks and local working sets), then the
//! interleaved remainder (shared matrices), then a small control block
//! (barrier counters) at the very top of L1. Whether the sequential regions
//! actually land in local banks is decided by the cluster's scrambling
//! switch — running the *same binary* with and without scrambling is
//! exactly the Top◆S vs Top◆ experiment of Fig. 7.

use mempool::ClusterConfig;
use std::fmt;

/// Control-block layout (at the top of L1): word 0 — the central barrier
/// counter; word 1 — the tree-barrier release flag; word 2 — the
/// tree-barrier global counter; words 4.. — one arrival counter per tile.
pub(crate) const CTRL_GLOBAL_OFF: u32 = 0;
pub(crate) const CTRL_RELEASE_OFF: u32 = 4;
pub(crate) const CTRL_TREE_GLOBAL_OFF: u32 = 8;
pub(crate) const CTRL_TILE_CTRS_OFF: u32 = 16;

/// The layout geometry a kernel is generated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of tiles.
    pub num_tiles: usize,
    /// Cores per tile.
    pub cores_per_tile: usize,
    /// Banks per tile.
    pub banks_per_tile: usize,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Sequential-region bytes per tile assumed by the layout.
    pub seq_bytes: u32,
}

/// Error returned when a kernel's geometry disagrees with a cluster
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometryMismatchError {
    msg: String,
}

impl fmt::Display for GeometryMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for GeometryMismatchError {}

impl Geometry {
    /// Derives the layout geometry from a cluster configuration. When the
    /// configuration disables scrambling, the layout still assumes the
    /// given `fallback_seq_bytes` so the same addresses are generated (the
    /// unscrambled run is the experiment's control).
    pub fn from_config(config: &ClusterConfig, fallback_seq_bytes: u32) -> Geometry {
        Geometry {
            num_tiles: config.num_tiles,
            cores_per_tile: config.cores_per_tile,
            banks_per_tile: config.banks_per_tile,
            rows_per_bank: config.rows_per_bank,
            seq_bytes: config.seq_region_bytes.unwrap_or(fallback_seq_bytes),
        }
    }

    /// Total cores.
    pub fn num_cores(&self) -> usize {
        self.num_tiles * self.cores_per_tile
    }

    /// Total L1 bytes.
    pub fn l1_bytes(&self) -> u32 {
        (self.num_tiles * self.banks_per_tile) as u32 * self.rows_per_bank * 4
    }

    /// Total bytes covered by the sequential regions.
    pub fn seq_total(&self) -> u32 {
        self.seq_bytes * self.num_tiles as u32
    }

    /// First byte of the shared interleaved data region.
    pub fn data_base(&self) -> u32 {
        self.seq_total()
    }

    /// Bytes reserved at the top of L1 for synchronization state (grows
    /// with the tile count for the per-tile tree-barrier counters).
    pub fn ctrl_bytes(&self) -> u32 {
        (CTRL_TILE_CTRS_OFF + 4 * self.num_tiles as u32).next_multiple_of(64)
    }

    /// Bytes available in the shared data region.
    pub fn data_bytes(&self) -> u32 {
        self.l1_bytes() - self.seq_total() - self.ctrl_bytes()
    }

    /// Address of the control block (== the central barrier counter).
    pub fn ctrl_base(&self) -> u32 {
        self.l1_bytes() - self.ctrl_bytes()
    }

    /// Address of the global barrier counter.
    pub fn barrier_addr(&self) -> u32 {
        self.ctrl_base() + CTRL_GLOBAL_OFF
    }

    /// Address of tile `tile`'s tree-barrier arrival counter.
    pub fn tile_barrier_addr(&self, tile: usize) -> u32 {
        self.ctrl_base() + CTRL_TILE_CTRS_OFF + 4 * tile as u32
    }

    /// Start of tile `tile`'s sequential region (programmer view).
    pub fn seq_base(&self, tile: usize) -> u32 {
        tile as u32 * self.seq_bytes
    }

    /// Bytes of sequential region available per core (the per-lane slice).
    pub fn seq_per_core(&self) -> u32 {
        self.seq_bytes / self.cores_per_tile as u32
    }

    /// Checks that `config` has the same geometry (scrambling may differ).
    ///
    /// # Errors
    ///
    /// Describes the first mismatching dimension.
    pub fn check_config(&self, config: &ClusterConfig) -> Result<(), GeometryMismatchError> {
        let err = |msg: String| Err(GeometryMismatchError { msg });
        if config.num_tiles != self.num_tiles {
            return err(format!(
                "kernel generated for {} tiles, cluster has {}",
                self.num_tiles, config.num_tiles
            ));
        }
        if config.cores_per_tile != self.cores_per_tile {
            return err(format!(
                "kernel generated for {} cores/tile, cluster has {}",
                self.cores_per_tile, config.cores_per_tile
            ));
        }
        if config.banks_per_tile != self.banks_per_tile
            || config.rows_per_bank != self.rows_per_bank
        {
            return err("bank geometry differs from the kernel layout".into());
        }
        if let Some(seq) = config.seq_region_bytes {
            if seq != self.seq_bytes {
                return err(format!(
                    "kernel laid out for {} B sequential regions, cluster scrambles {} B",
                    self.seq_bytes, seq
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool::Topology;

    #[test]
    fn paper_geometry_numbers() {
        let cfg = ClusterConfig::paper(Topology::TopH);
        let g = Geometry::from_config(&cfg, 4096);
        assert_eq!(g.num_cores(), 256);
        assert_eq!(g.l1_bytes(), 1 << 20);
        assert_eq!(g.seq_total(), 256 << 10);
        assert_eq!(g.data_base(), 256 << 10);
        assert_eq!(g.ctrl_bytes(), 320); // 16 + 4*64 rounded to 64
        assert_eq!(g.barrier_addr(), (1 << 20) - 320);
        assert_eq!(g.tile_barrier_addr(0), g.ctrl_base() + 16);
        assert_eq!(g.seq_per_core(), 1024);
        g.check_config(&cfg).unwrap();
    }

    #[test]
    fn unscrambled_config_uses_fallback_layout() {
        let mut cfg = ClusterConfig::paper(Topology::Top1);
        cfg.seq_region_bytes = None;
        let g = Geometry::from_config(&cfg, 4096);
        assert_eq!(g.seq_bytes, 4096);
        g.check_config(&cfg).unwrap();
    }

    #[test]
    fn mismatches_are_reported() {
        let cfg = ClusterConfig::paper(Topology::TopH);
        let g = Geometry::from_config(&cfg, 4096);
        let mut other = cfg;
        other.num_tiles = 16;
        assert!(g.check_config(&other).is_err());
        let mut other = cfg;
        other.seq_region_bytes = Some(1024);
        assert!(g.check_config(&other).is_err());
    }
}
