//! The kernel abstraction and the harness that runs a kernel on a cluster
//! configuration and verifies its results.

use crate::Geometry;
use mempool::{Cluster, ClusterConfig, ClusterStats, FunctionalSim, L1Memory};
use mempool_snitch::CoreStats;
use std::fmt;

/// A benchmark kernel: generates its assembly for a fixed [`Geometry`],
/// initializes input data, and verifies results against a golden model.
pub trait Kernel {
    /// Short name (e.g. `"matmul"`).
    fn name(&self) -> &'static str;

    /// The geometry this kernel instance was laid out for.
    fn geometry(&self) -> &Geometry;

    /// Emits the complete assembly program.
    fn source(&self) -> String;

    /// Writes the input data set derived from `seed` into L1 (cycle-accurate
    /// cluster or functional simulator alike).
    fn init(&self, mem: &mut dyn L1Memory, seed: u64);

    /// Checks the outputs against the golden model for the same `seed`.
    ///
    /// # Errors
    ///
    /// Describes the first mismatching element.
    fn check(&self, mem: &dyn L1Memory, seed: u64) -> Result<(), CheckKernelError>;
}

/// A kernel result mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckKernelError {
    msg: String,
}

impl CheckKernelError {
    /// Creates a mismatch report.
    pub fn new(msg: impl Into<String>) -> Self {
        CheckKernelError { msg: msg.into() }
    }
}

impl fmt::Display for CheckKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for CheckKernelError {}

/// The kernel could not be turned into a runnable program. Returned by
/// [`build_program`] and wrapped in [`RunKernelError::Build`] by the
/// runners, so a broken kernel surfaces as a typed error at the call site
/// instead of a panic inside library code.
#[derive(Debug)]
pub enum ProgramBuildError {
    /// The kernel's layout does not fit the cluster configuration.
    Geometry(crate::GeometryMismatchError),
    /// The generated assembly failed to assemble (kernel bug).
    Assemble(mempool_riscv::AsmError),
}

impl fmt::Display for ProgramBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramBuildError::Geometry(e) => write!(f, "geometry mismatch: {e}"),
            ProgramBuildError::Assemble(e) => write!(f, "kernel failed to assemble: {e}"),
        }
    }
}

impl std::error::Error for ProgramBuildError {}

/// Checks the kernel's geometry against `config` and assembles its source.
///
/// # Errors
///
/// [`ProgramBuildError::Geometry`] when the layout does not fit `config`,
/// [`ProgramBuildError::Assemble`] when the emitted assembly is invalid.
pub fn build_program(
    kernel: &dyn Kernel,
    config: &ClusterConfig,
) -> Result<mempool_riscv::Program, ProgramBuildError> {
    kernel
        .geometry()
        .check_config(config)
        .map_err(ProgramBuildError::Geometry)?;
    mempool_riscv::assemble(&kernel.source()).map_err(ProgramBuildError::Assemble)
}

/// Everything that can go wrong running a kernel.
#[derive(Debug)]
pub enum RunKernelError {
    /// The kernel could not be built (geometry mismatch or assembler error).
    Build(ProgramBuildError),
    /// The cluster configuration is invalid.
    Config(mempool::ValidateConfigError),
    /// The program image contains an undecodable word.
    Decode(mempool_riscv::DecodeError),
    /// The program did not finish within the cycle budget, or the
    /// watchdog detected a deadlock.
    Timeout(mempool::SimError),
    /// The functional run did not finish within the step budget.
    FunctionalTimeout(mempool::FunctionalTimeoutError),
    /// Results did not match the golden model.
    Check(CheckKernelError),
}

impl fmt::Display for RunKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunKernelError::Build(e) => e.fmt(f),
            RunKernelError::Config(e) => write!(f, "invalid configuration: {e}"),
            RunKernelError::Decode(e) => write!(f, "program image corrupt: {e}"),
            RunKernelError::Timeout(e) => write!(f, "{e}"),
            RunKernelError::FunctionalTimeout(e) => write!(f, "{e}"),
            RunKernelError::Check(e) => write!(f, "result mismatch: {e}"),
        }
    }
}

impl std::error::Error for RunKernelError {}

impl From<ProgramBuildError> for RunKernelError {
    fn from(e: ProgramBuildError) -> Self {
        RunKernelError::Build(e)
    }
}

/// Measured outcome of one kernel run.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Wall-clock cycles from reset to the last core halting (plus drain).
    pub cycles: u64,
    /// Cluster-level counters (request locality, latency distribution, …).
    pub stats: ClusterStats,
    /// Per-core counters summed over all cores (instruction mix, stalls).
    pub core_totals: CoreStats,
    /// Combined I-cache statistics.
    pub icache: mempool_mem::CacheStats,
}

/// Assembles, runs and verifies `kernel` on `config`.
///
/// # Errors
///
/// See [`RunKernelError`].
pub fn run_kernel(
    kernel: &dyn Kernel,
    config: ClusterConfig,
    seed: u64,
    max_cycles: u64,
) -> Result<KernelRun, RunKernelError> {
    let program = build_program(kernel, &config)?;
    let mut cluster = Cluster::snitch(config).map_err(RunKernelError::Config)?;
    cluster
        .load_program(&program)
        .map_err(RunKernelError::Decode)?;
    kernel.init(&mut cluster, seed);
    let cycles = cluster.run(max_cycles).map_err(RunKernelError::Timeout)?;
    kernel
        .check(&cluster, seed)
        .map_err(RunKernelError::Check)?;
    Ok(KernelRun {
        cycles,
        stats: cluster.stats().clone(),
        core_totals: cluster.core_stats_total(),
        icache: cluster.icache_stats(),
    })
}

/// Runs and verifies `kernel` on the *functional* (untimed) simulator —
/// instant golden runs for kernel bring-up. Returns the number of
/// round-robin steps executed.
///
/// # Errors
///
/// See [`RunKernelError`].
pub fn run_kernel_functional(
    kernel: &dyn Kernel,
    config: ClusterConfig,
    seed: u64,
    max_steps: u64,
) -> Result<u64, RunKernelError> {
    let program = build_program(kernel, &config)?;
    let mut sim = FunctionalSim::new(config).map_err(RunKernelError::Config)?;
    sim.load_program(&program).map_err(RunKernelError::Decode)?;
    kernel.init(&mut sim, seed);
    let steps = sim
        .run(max_steps)
        .map_err(RunKernelError::FunctionalTimeout)?;
    kernel.check(&sim, seed).map_err(RunKernelError::Check)?;
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Geometry;
    use mempool::Topology;

    /// A kernel whose generated assembly is broken — the former library
    /// panic path ("prologue assembles" / `unwrap_or_else(|e| panic!(..))`).
    struct BadAsmKernel {
        geometry: Geometry,
    }

    impl Kernel for BadAsmKernel {
        fn name(&self) -> &'static str {
            "bad-asm"
        }
        fn geometry(&self) -> &Geometry {
            &self.geometry
        }
        fn source(&self) -> String {
            "addi t0, t0, 1\nfrobnicate t1, t2\necall\n".to_string()
        }
        fn init(&self, _mem: &mut dyn L1Memory, _seed: u64) {}
        fn check(&self, _mem: &dyn L1Memory, _seed: u64) -> Result<(), CheckKernelError> {
            Ok(())
        }
    }

    #[test]
    fn bad_assembly_is_a_typed_error_not_a_panic() {
        let config = ClusterConfig::small(Topology::TopH);
        let kernel = BadAsmKernel {
            geometry: Geometry::from_config(&config, 4096),
        };
        let err = build_program(&kernel, &config).expect_err("broken asm must not build");
        assert!(matches!(err, ProgramBuildError::Assemble(_)));
        assert!(err.to_string().contains("failed to assemble"), "{err}");

        // Both runners surface the same error instead of aborting.
        let err = run_kernel(&kernel, config, 1, 1_000).expect_err("must not run");
        assert!(matches!(
            err,
            RunKernelError::Build(ProgramBuildError::Assemble(_))
        ));
        let err = run_kernel_functional(&kernel, config, 1, 1_000).expect_err("must not run");
        assert!(matches!(err, RunKernelError::Build(_)));
    }

    #[test]
    fn geometry_mismatch_is_a_typed_error() {
        let laid_out_for = ClusterConfig::paper(Topology::TopH);
        let run_on = ClusterConfig::small(Topology::TopH);
        let kernel = BadAsmKernel {
            geometry: Geometry::from_config(&laid_out_for, 4096),
        };
        let err = build_program(&kernel, &run_on).expect_err("wrong geometry must not build");
        assert!(matches!(err, ProgramBuildError::Geometry(_)));
        assert!(err.to_string().contains("geometry mismatch"), "{err}");
    }
}
