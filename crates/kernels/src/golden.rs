//! Bit-exact reference implementations the assembly kernels are verified
//! against.

/// `C = A × B` over `i32` with wrapping arithmetic, row-major `n×n`.
///
/// # Panics
///
/// Panics if the slices are not `n*n` long.
pub fn matmul_i32(a: &[i32], b: &[i32], n: usize) -> Vec<i32> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut c = vec![0i32; n * n];
    for r in 0..n {
        for col in 0..n {
            let mut acc = 0i32;
            for k in 0..n {
                acc = acc.wrapping_add(a[r * n + k].wrapping_mul(b[k * n + col]));
            }
            c[r * n + col] = acc;
        }
    }
    c
}


/// `Σ x[i]·y[i]` with wrapping `i32` arithmetic.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dotprod_i32(x: &[i32], y: &[i32]) -> i32 {
    assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .fold(0i32, |acc, (&a, &b)| acc.wrapping_add(a.wrapping_mul(b)))
}

/// The 3×3 kernel used by the `2dconv` benchmark: a Gaussian blur with a
/// 4-bit right shift (sum of weights = 16).
pub const CONV_KERNEL: [[i32; 3]; 3] = [[1, 2, 1], [2, 4, 2], [1, 2, 1]];

/// 2-D discrete convolution of a `h×w` image with [`CONV_KERNEL`],
/// computing interior pixels only (borders stay 0), `>> 4` normalization.
///
/// # Panics
///
/// Panics if `image.len() != h * w`.
pub fn conv2d_3x3_i32(image: &[i32], h: usize, w: usize) -> Vec<i32> {
    assert_eq!(image.len(), h * w);
    let mut out = vec![0i32; h * w];
    for r in 1..h.saturating_sub(1) {
        for c in 1..w.saturating_sub(1) {
            let mut acc = 0i32;
            for (dr, krow) in CONV_KERNEL.iter().enumerate() {
                for (dc, &k) in krow.iter().enumerate() {
                    let pix = image[(r + dr - 1) * w + (c + dc - 1)];
                    acc = acc.wrapping_add(k.wrapping_mul(pix));
                }
            }
            out[r * w + c] = acc >> 4;
        }
    }
    out
}

/// Q7 fixed-point DCT-II coefficient matrix: `round(s(i) · cos((2k+1)iπ/16)
/// · 128)` with the orthonormal scaling `s(0)=√(1/8)`, `s(i)=√(2/8)`.
pub fn dct_coefficients() -> [[i32; 8]; 8] {
    let mut c = [[0i32; 8]; 8];
    for (i, row) in c.iter_mut().enumerate() {
        let s = if i == 0 {
            (1.0f64 / 8.0).sqrt()
        } else {
            (2.0f64 / 8.0).sqrt()
        };
        for (k, cell) in row.iter_mut().enumerate() {
            let angle = (2.0 * k as f64 + 1.0) * i as f64 * std::f64::consts::PI / 16.0;
            *cell = (s * angle.cos() * 128.0).round() as i32;
        }
    }
    c
}

/// 2-D 8×8 DCT-II in Q7 fixed point, matching the assembly kernel exactly:
/// row pass `tmp = (C·X) >> 7`, column pass `out = (tmp·Cᵀ) >> 7` (shifts
/// are arithmetic, applied per output element).
///
/// # Panics
///
/// Panics if `block.len() != 64`.
pub fn dct8x8_q7(block: &[i32]) -> Vec<i32> {
    assert_eq!(block.len(), 64);
    let c = dct_coefficients();
    let mut tmp = [0i32; 64];
    for i in 0..8 {
        for j in 0..8 {
            let mut acc = 0i32;
            for k in 0..8 {
                acc = acc.wrapping_add(c[i][k].wrapping_mul(block[k * 8 + j]));
            }
            tmp[i * 8 + j] = acc >> 7;
        }
    }
    let mut out = vec![0i32; 64];
    for i in 0..8 {
        for j in 0..8 {
            let mut acc = 0i32;
            for k in 0..8 {
                acc = acc.wrapping_add(tmp[i * 8 + k].wrapping_mul(c[j][k]));
            }
            out[i * 8 + j] = acc >> 7;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let n = 4;
        let mut eye = vec![0i32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1;
        }
        let a: Vec<i32> = (0..(n * n) as i32).collect();
        assert_eq!(matmul_i32(&a, &eye, n), a);
        assert_eq!(matmul_i32(&eye, &a, n), a);
    }

    #[test]
    fn matmul_small_known() {
        // [1 2; 3 4] × [5 6; 7 8] = [19 22; 43 50]
        let c = matmul_i32(&[1, 2, 3, 4], &[5, 6, 7, 8], 2);
        assert_eq!(c, vec![19, 22, 43, 50]);
    }

    #[test]
    fn dotprod_known() {
        assert_eq!(dotprod_i32(&[1, 2, 3], &[4, 5, 6]), 32);
        assert_eq!(dotprod_i32(&[], &[]), 0);
        assert_eq!(dotprod_i32(&[i32::MAX, 1], &[2, 0]), i32::MAX.wrapping_mul(2));
    }

    #[test]
    fn conv_flat_image_is_flat_interior() {
        let h = 5;
        let w = 6;
        let image = vec![16i32; h * w];
        let out = conv2d_3x3_i32(&image, h, w);
        for r in 1..h - 1 {
            for c in 1..w - 1 {
                assert_eq!(out[r * w + c], 16); // blur of constant = constant
            }
        }
        assert_eq!(out[0], 0); // border untouched
    }

    #[test]
    fn dct_of_constant_block_is_dc_only() {
        let block = vec![64i32; 64];
        let out = dct8x8_q7(&block);
        // DC term ≈ 8 · 64 · s(0)² scaling; all AC terms ~0 (fixed-point
        // rounding can leave ±1).
        assert!(out[0] > 400, "dc {}", out[0]);
        for (i, &v) in out.iter().enumerate().skip(1) {
            assert!(v.abs() <= 2, "ac[{i}] = {v}");
        }
    }

    #[test]
    fn dct_coefficient_symmetry() {
        let c = dct_coefficients();
        // Row 0 is constant; even rows are symmetric, odd rows antisymmetric.
        for k in 0..8 {
            assert_eq!(c[0][k], c[0][0]);
            assert_eq!(c[2][k], c[2][7 - k]);
            assert_eq!(c[1][k], -c[1][7 - k]);
        }
    }
}
