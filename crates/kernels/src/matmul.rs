//! `matmul`: n×n integer matrix multiplication with the operands in the
//! shared interleaved region — "accesses are predominantly remote" (§V-C).

use crate::golden::matmul_i32;
use crate::runtime::{emit_epilogue, emit_prologue, emit_region};
use crate::{CheckKernelError, Geometry, Kernel};
use mempool::L1Memory;
use mempool_rng::StdRng;
use mempool_rng::{Rng, SeedableRng};
use std::fmt;

/// Error building a [`Matmul`] kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildKernelError {
    msg: String,
}

impl BuildKernelError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        BuildKernelError { msg: msg.into() }
    }
}

impl fmt::Display for BuildKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for BuildKernelError {}

/// The `matmul` benchmark: `C = A × B`, work split element-wise across all
/// cores (each core computes `n²/num_cores` contiguous output elements).
#[derive(Debug, Clone)]
pub struct Matmul {
    geom: Geometry,
    n: usize,
}

impl Matmul {
    /// Creates an n×n matmul for the given geometry.
    ///
    /// # Errors
    ///
    /// `n` must be a power of two, `n²` divisible by the core count, and
    /// the three matrices must fit in the shared data region.
    pub fn new(geom: Geometry, n: usize) -> Result<Matmul, BuildKernelError> {
        if !n.is_power_of_two() || n < 4 {
            return Err(BuildKernelError::new("n must be a power of two ≥ 4"));
        }
        if n > 128 {
            return Err(BuildKernelError::new(
                "n > 128 exceeds the unrolled loop's immediate ranges",
            ));
        }
        if !(n * n).is_multiple_of(geom.num_cores()) {
            return Err(BuildKernelError::new(format!(
                "n²={} not divisible by {} cores",
                n * n,
                geom.num_cores()
            )));
        }
        let bytes = 3 * (n * n * 4) as u32;
        if bytes > geom.data_bytes() {
            return Err(BuildKernelError::new(format!(
                "matrices need {bytes} B, shared region has {} B",
                geom.data_bytes()
            )));
        }
        Ok(Matmul { geom, n })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    fn a_base(&self) -> u32 {
        self.geom.data_base()
    }

    fn b_base(&self) -> u32 {
        self.a_base() + (self.n * self.n * 4) as u32
    }

    fn c_base(&self) -> u32 {
        self.b_base() + (self.n * self.n * 4) as u32
    }

    fn inputs(&self, seed: u64) -> (Vec<i32>, Vec<i32>) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d61_746d);
        let n = self.n;
        let a: Vec<i32> = (0..n * n).map(|_| rng.gen_range(-128..128)).collect();
        let b: Vec<i32> = (0..n * n).map(|_| rng.gen_range(-128..128)).collect();
        (a, b)
    }
}

impl Kernel for Matmul {
    fn name(&self) -> &'static str {
        "matmul"
    }

    fn geometry(&self) -> &Geometry {
        &self.geom
    }

    fn source(&self) -> String {
        let n = self.n;
        let log2n = n.trailing_zeros();
        let epc = n * n / self.geom.num_cores();
        format!(
            "{prologue}\
             \tli   a6, {epc}\n\
             \tmul  s3, s0, a6            # first output element\n\
             \tadd  s4, s3, a6            # one past last\n\
             elem_loop:\n\
             {mark_compute}\
             \tsrli t0, s3, {log2n}       # row\n\
             \tandi t1, s3, {n_mask}      # column\n\
             \tslli t2, t0, {log2n_plus2}\n\
             \tli   t3, {a_base}\n\
             \tadd  t2, t2, t3            # &A[row][0]\n\
             \tslli t4, t1, 2\n\
             \tli   t5, {b_base}\n\
             \tadd  t4, t4, t5            # &B[0][col]\n\
             \tli   t6, 0                 # accumulator\n\
             \tli   a5, {n}\n\
             kloop:\n\
             \t# unrolled ×4: eight loads in flight per iteration, letting\n\
             \t# the Snitch LSU hide the interconnect latency\n\
             \tlw   a0, 0(t2)\n\
             \tlw   a1, 4(t2)\n\
             \tlw   a2, 8(t2)\n\
             \tlw   a3, 12(t2)\n\
             \tlw   a4, 0(t4)\n\
             \tlw   a6, {row1}(t4)\n\
             \tlw   a7, {row2}(t4)\n\
             \tlw   t5, {row3}(t4)\n\
             \taddi t2, t2, 16\n\
             \tmul  a0, a0, a4\n\
             \tadd  t6, t6, a0\n\
             \tmul  a1, a1, a6\n\
             \tadd  t6, t6, a1\n\
             \tmul  a2, a2, a7\n\
             \tadd  t6, t6, a2\n\
             \tmul  a3, a3, t5\n\
             \tadd  t6, t6, a3\n\
             \tli   t5, {row4}\n\
             \tadd  t4, t4, t5\n\
             \taddi a5, a5, -4\n\
             \tbnez a5, kloop\n\
             {mark_writeback}\
             \tslli a3, s3, 2\n\
             \tli   a4, {c_base}\n\
             \tadd  a3, a3, a4\n\
             \tsw   t6, (a3)\n\
             \taddi s3, s3, 1\n\
             \tblt  s3, s4, elem_loop\n\
             {epilogue}",
            prologue = emit_prologue(&self.geom),
            epilogue = emit_epilogue(),
            mark_compute = emit_region(mempool_snitch::profile::REGION_COMPUTE),
            mark_writeback = emit_region(mempool_snitch::profile::REGION_WRITEBACK),
            n_mask = n - 1,
            log2n_plus2 = log2n + 2,
            a_base = self.a_base(),
            b_base = self.b_base(),
            c_base = self.c_base(),
            row1 = n * 4,
            row2 = n * 8,
            row3 = n * 12,
            row4 = n * 16,
        )
    }

    fn init(&self, cluster: &mut dyn L1Memory, seed: u64) {
        let (a, b) = self.inputs(seed);
        let to_u32 = |v: &[i32]| v.iter().map(|&x| x as u32).collect::<Vec<_>>();
        cluster.write_words(self.a_base(), &to_u32(&a)).expect("kernel layout fits in L1");
        cluster.write_words(self.b_base(), &to_u32(&b)).expect("kernel layout fits in L1");
        cluster.write_words(self.c_base(), &vec![0; self.n * self.n]).expect("kernel layout fits in L1");
    }

    fn check(&self, cluster: &dyn L1Memory, seed: u64) -> Result<(), CheckKernelError> {
        let (a, b) = self.inputs(seed);
        let expect = matmul_i32(&a, &b, self.n);
        let got = cluster.read_words(self.c_base(), self.n * self.n).expect("kernel layout fits in L1");
        for (i, (&e, &g)) in expect.iter().zip(&got).enumerate() {
            if e as u32 != g {
                return Err(CheckKernelError::new(format!(
                    "C[{}][{}]: expected {}, got {}",
                    i / self.n,
                    i % self.n,
                    e,
                    g as i32
                )));
            }
        }
        Ok(())
    }
}
