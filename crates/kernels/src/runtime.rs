//! Common assembly runtime: per-core identification, stack setup in the
//! tile's sequential region, and a counting barrier over an AMO.

use crate::Geometry;

/// Registers reserved by the runtime across kernel code:
///
/// * `s0` — hart ID, `s1` — tile index, `s2` — lane within the tile;
/// * `s10` — barrier counter address, `s11` — next barrier target.
///
/// Emits the program entry: reads `mhartid`, derives tile/lane, and points
/// `sp` at the top of the core's slice of its tile's sequential region
/// (stacks are the canonical "private data" the hybrid addressing scheme
/// keeps local, §IV).
pub fn emit_prologue(geom: &Geometry) -> String {
    let cpt = geom.cores_per_tile;
    assert!(cpt.is_power_of_two(), "cores_per_tile must be a power of two");
    let log_cpt = cpt.trailing_zeros();
    let seq_bytes = geom.seq_bytes;
    let slice = geom.seq_per_core();
    format!(
        "_start:\n\
         \tcsrr s0, mhartid\n\
         \tsrli s1, s0, {log_cpt}          # tile index\n\
         \tandi s2, s0, {lane_mask}        # lane within tile\n\
         \t# sp = tile*seq_bytes + (lane+1)*slice\n\
         \tli   t0, {seq_bytes}\n\
         \tmul  sp, s1, t0\n\
         \taddi t0, s2, 1\n\
         \tli   t1, {slice}\n\
         \tmul  t0, t0, t1\n\
         \tadd  sp, sp, t0\n\
         \tli   s10, {barrier}\n\
         \tli   s11, {ncores}\n",
        lane_mask = cpt - 1,
        barrier = geom.barrier_addr(),
        ncores = geom.num_cores(),
    )
}

/// Emits the `__barrier` subroutine (call with `jal ra, __barrier`).
///
/// Arrival is an `amoadd.w` on a shared counter after a `fence` (MemPool's
/// interconnect does not order transactions, so the fence publishes the
/// core's prior stores before the arrival becomes visible). Departure spins
/// on the counter until all cores of the current epoch arrived; `s11`
/// tracks the per-core epoch target.
pub fn emit_barrier(geom: &Geometry) -> String {
    emit_barrier_with_backoff(geom, 0)
}

/// [`emit_barrier`] with a constant polling backoff: between release-flag
/// polls each core burns `backoff` loop iterations (~2 cycles each),
/// thinning the spin traffic that otherwise saturates the counter's bank.
pub fn emit_barrier_with_backoff(geom: &Geometry, backoff: u32) -> String {
    format!(
        "__barrier:\n\
         \tfence                      # publish prior stores\n\
         \tli   t0, 1\n\
         \tamoadd.w t1, t0, (s10)\n\
         __barrier_spin:\n\
         \tlw   t1, (s10)\n\
         \tbge  t1, s11, __barrier_done\n\
         {backoff_code}\
         \tj    __barrier_spin\n\
         __barrier_done:\n\
         \tli   t0, {ncores}\n\
         \tadd  s11, s11, t0          # next epoch target\n\
         \tret\n",
        ncores = geom.num_cores(),
        backoff_code = backoff_snippet("__barrier", backoff),
    )
}

fn backoff_snippet(prefix: &str, iters: u32) -> String {
    if iters == 0 {
        return String::new();
    }
    format!(
        "\tli   t4, {iters}\n\
         {prefix}_delay:\n\
         \taddi t4, t4, -1\n\
         \tbnez t4, {prefix}_delay\n"
    )
}

/// Emits the halt sequence: drain outstanding memory operations, then stop.
pub fn emit_epilogue() -> String {
    "\tfence\n\tecall\n".to_owned()
}

/// Emits a profiler region marker: writes `region` into the custom
/// `mregion` CSR so the profiler attributes the following instructions to
/// that kernel phase (`0` init, `1` compute, `2` barrier, `3` writeback —
/// the `mempool_snitch::profile` convention; higher IDs are free).
///
/// Two instructions, clobbering `t0`. The CSR is always writable, so
/// marked kernels run unchanged when profiling is disabled; emit markers
/// around phase boundaries in straight-line kernel code, not inside shared
/// subroutines (a subroutine cannot restore its caller's region).
pub fn emit_region(region: u32) -> String {
    format!("\tli   t0, {region}\n\tcsrw mregion, t0\n")
}

/// Emits the `__tree_barrier` subroutine plus its register initialization
/// (`__tree_barrier_init`, call once after the prologue).
///
/// A two-level barrier: cores first arrive at a *per-tile* counter, the
/// last arrival of each tile escalates to the global counter, and the last
/// tile publishes a release flag everyone spins on. Compared with
/// [`emit_barrier`]'s single counter, arrivals are spread over one word
/// per tile, cutting the hot-bank serialization from `num_cores` to
/// `cores_per_tile + num_tiles` AMO round trips.
///
/// Reserves `s8` (tile counter address) and `s9` (tile epoch target) in
/// addition to the prologue's `s10`/`s11`; here `s10` points at the
/// control block and `s11` tracks the *global* epoch target.
pub fn emit_tree_barrier(geom: &Geometry) -> String {
    emit_tree_barrier_with_backoff(geom, 0)
}

/// [`emit_tree_barrier`] with a release-poll backoff (see
/// [`emit_barrier_with_backoff`]).
pub fn emit_tree_barrier_with_backoff(geom: &Geometry, backoff: u32) -> String {
    let cpt = geom.cores_per_tile;
    format!(
        "__tree_barrier_init:\n\
         \tli   s10, {ctrl}\n\
         \tslli s8, s1, 2\n\
         \tadd  s8, s8, s10\n\
         \taddi s8, s8, {tile_ctrs_off}   # &tile_counter[tile]\n\
         \tli   s9, {cpt}\n\
         \tli   s11, {ntiles}\n\
         \tret\n\
         __tree_barrier:\n\
         \tfence                      # publish prior stores\n\
         \tli   t0, 1\n\
         \tamoadd.w t1, t0, (s8)      # arrive at the tile counter\n\
         \taddi t1, t1, 1\n\
         \tbne  t1, s9, __tree_spin   # not the tile's last arrival\n\
         \taddi t4, s10, {tree_global_off}\n\
         \tamoadd.w t2, t0, (t4)      # tile representative escalates\n\
         \taddi t2, t2, 1\n\
         \tbne  t2, s11, __tree_spin  # not the last tile\n\
         \tsw   t2, {release_off}(s10) # release the epoch\n\
         __tree_spin:\n\
         \tlw   t3, {release_off}(s10)\n\
         \tbge  t3, s11, __tree_done\n\
         {backoff_code}\
         \tj    __tree_spin\n\
         __tree_done:\n\
         \taddi s9, s9, {cpt}\n\
         \tli   t0, {ntiles}\n\
         \tadd  s11, s11, t0\n\
         \tret\n",
        backoff_code = backoff_snippet("__tree", backoff),
        ctrl = geom.ctrl_base(),
        tile_ctrs_off = crate::geometry::CTRL_TILE_CTRS_OFF,
        tree_global_off = crate::geometry::CTRL_TREE_GLOBAL_OFF,
        release_off = crate::geometry::CTRL_RELEASE_OFF,
        ntiles = geom.num_tiles,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool::{Cluster, ClusterConfig, Topology};
    use mempool_riscv::assemble;
    #[allow(unused_imports)]
    use crate::runtime::emit_tree_barrier;

    fn geom(cfg: &ClusterConfig) -> Geometry {
        Geometry::from_config(cfg, 4096)
    }

    #[test]
    fn prologue_assembles_and_sets_sp() {
        let cfg = ClusterConfig::small(Topology::TopH);
        let g = geom(&cfg);
        let src = format!("{}{}", emit_prologue(&g), emit_epilogue());
        let program = assemble(&src).expect("prologue assembles");
        let mut cluster = Cluster::snitch(cfg).unwrap();
        cluster.load_program(&program).unwrap();
        cluster.run(100_000).unwrap();
        // Core 5 = tile 1, lane 1: sp = 4096 + 2*1024.
        assert_eq!(cluster.cores()[5].reg(mempool_riscv::Reg::SP), 4096 + 2 * 1024);
        // Core 0 = tile 0, lane 0: sp = 1024.
        assert_eq!(cluster.cores()[0].reg(mempool_riscv::Reg::SP), 1024);
    }

    #[test]
    fn barrier_synchronizes_all_cores() {
        // Each core stores its hart ID, barriers, then reads a *different*
        // core's slot; every read must observe the post-barrier value.
        let cfg = ClusterConfig::small(Topology::TopH);
        let g = geom(&cfg);
        let data = g.data_base();
        let n = g.num_cores();
        let src = format!(
            "{prologue}\
             \tli   t0, {data}\n\
             \tslli t1, s0, 2\n\
             \tadd  t0, t0, t1\n\
             \taddi t2, s0, 1000\n\
             \tsw   t2, (t0)\n\
             \tjal  ra, __barrier\n\
             \t# read neighbour (hart+1 mod n)'s slot\n\
             \taddi t3, s0, 1\n\
             \tli   t4, {n}\n\
             \tblt  t3, t4, nowrap\n\
             \tli   t3, 0\n\
             nowrap:\n\
             \tslli t3, t3, 2\n\
             \tli   t0, {data}\n\
             \tadd  t0, t0, t3\n\
             \tlw   a0, (t0)\n\
             {epilogue}\
             {barrier}",
            prologue = emit_prologue(&g),
            epilogue = emit_epilogue(),
            barrier = emit_barrier(&g),
        );
        let program = assemble(&src).expect("assembles");
        let mut cluster = Cluster::snitch(cfg).unwrap();
        cluster.load_program(&program).unwrap();
        cluster.run(2_000_000).expect("finishes");
        for (i, core) in cluster.cores().iter().enumerate() {
            let neighbour = (i + 1) % n;
            assert_eq!(
                core.reg(mempool_riscv::Reg::A0),
                neighbour as u32 + 1000,
                "core {i} observed a stale neighbour value"
            );
        }
    }

    #[test]
    fn tree_barrier_synchronizes_and_is_reusable() {
        // Same two-phase write/sum pattern as the central-barrier test, but
        // through the two-level tree barrier, twice in a row.
        let cfg = ClusterConfig::small(Topology::TopH);
        let g = geom(&cfg);
        let data = g.data_base();
        let n = g.num_cores();
        let src = format!(
            "{prologue}             \tjal  ra, __tree_barrier_init\n             \tli   t0, {data}\n             \tslli t1, s0, 2\n             \tadd  t0, t0, t1\n             \taddi t2, s0, 77\n             \tsw   t2, (t0)\n             \tjal  ra, __tree_barrier\n             \tjal  ra, __tree_barrier\n             \tli   t0, {data}\n             \tli   t3, {n}\n             \tli   a0, 0\n             sum:\n             \tlw   t4, (t0)\n             \tadd  a0, a0, t4\n             \taddi t0, t0, 4\n             \taddi t3, t3, -1\n             \tbnez t3, sum\n             {epilogue}             {barrier}",
            prologue = emit_prologue(&g),
            epilogue = emit_epilogue(),
            barrier = emit_tree_barrier(&g),
        );
        let program = assemble(&src).unwrap_or_else(|e| panic!("{e}"));
        let mut cluster = Cluster::snitch(cfg).unwrap();
        cluster.load_program(&program).unwrap();
        cluster.run(5_000_000).expect("finishes");
        let expect: u32 = (0..n as u32).map(|i| i + 77).sum();
        for (i, core) in cluster.cores().iter().enumerate() {
            assert_eq!(core.reg(mempool_riscv::Reg::A0), expect, "core {i}");
        }
    }

    #[test]
    fn barrier_reusable_across_epochs() {
        // Two barriers in a row must not deadlock or let anyone skip ahead.
        let cfg = ClusterConfig::small(Topology::Top1);
        let g = geom(&cfg);
        let src = format!(
            "{prologue}\
             \tjal ra, __barrier\n\
             \tjal ra, __barrier\n\
             {epilogue}\
             {barrier}",
            prologue = emit_prologue(&g),
            epilogue = emit_epilogue(),
            barrier = emit_barrier(&g),
        );
        let program = assemble(&src).unwrap();
        let mut cluster = Cluster::snitch(cfg).unwrap();
        cluster.load_program(&program).unwrap();
        cluster.run(2_000_000).expect("finishes");
        // Counter reached 2 epochs × num_cores.
        assert_eq!(
            cluster.read_word(g.barrier_addr()),
            Some(2 * g.num_cores() as u32)
        );
    }
}
