//! `2dconv`: 3×3 discrete convolution with the image distributed row-wise
//! across the tiles' sequential regions — "all accesses are local, except
//! for cores working on windows that require data from two tiles" (§V-C).

use crate::golden::conv2d_3x3_i32;
use crate::matmul::BuildKernelError;
use crate::runtime::{emit_epilogue, emit_prologue};
use crate::{CheckKernelError, Geometry, Kernel};
use mempool::L1Memory;
use mempool_rng::StdRng;
use mempool_rng::{Rng, SeedableRng};

/// The `2dconv` benchmark: each tile holds `rows_per_tile` image rows (and
/// the corresponding output rows) in its sequential region; each core
/// convolves its share of the tile's rows, reaching into the neighbouring
/// tile's region only for halo rows.
#[derive(Debug, Clone)]
pub struct Conv2d {
    geom: Geometry,
    width: usize,
    rows_per_tile: usize,
}

impl Conv2d {
    /// Creates a convolution over a `width`-column image with
    /// `rows_per_tile` rows stored per tile (image height =
    /// `rows_per_tile × num_tiles`).
    ///
    /// # Errors
    ///
    /// `width` and `rows_per_tile` must be powers of two, the rows must
    /// split evenly among the tile's cores, and input+output slices must
    /// fit the sequential region.
    pub fn new(
        geom: Geometry,
        width: usize,
        rows_per_tile: usize,
    ) -> Result<Conv2d, BuildKernelError> {
        if !width.is_power_of_two() || width < 4 {
            return Err(BuildKernelError::new("width must be a power of two ≥ 4"));
        }
        if !rows_per_tile.is_power_of_two() {
            return Err(BuildKernelError::new("rows_per_tile must be a power of two"));
        }
        if !rows_per_tile.is_multiple_of(geom.cores_per_tile) {
            return Err(BuildKernelError::new(
                "rows_per_tile must split evenly among the tile's cores",
            ));
        }
        let slice_bytes = (2 * rows_per_tile * width * 4) as u32;
        if slice_bytes > geom.seq_bytes {
            return Err(BuildKernelError::new(format!(
                "image slices need {slice_bytes} B, sequential region is {} B",
                geom.seq_bytes
            )));
        }
        Ok(Conv2d {
            geom,
            width,
            rows_per_tile,
        })
    }

    /// A geometry-derived default: 16-column image filling half the
    /// sequential region.
    ///
    /// # Errors
    ///
    /// Propagates [`Conv2d::new`] errors.
    pub fn auto(geom: Geometry) -> Result<Conv2d, BuildKernelError> {
        let width = 16usize;
        let max_rows = geom.seq_bytes as usize / (2 * width * 4);
        let rows = if max_rows.is_power_of_two() {
            max_rows
        } else {
            max_rows.next_power_of_two() / 2
        };
        Conv2d::new(geom, width, rows.max(geom.cores_per_tile))
    }

    /// Image height in rows.
    pub fn height(&self) -> usize {
        self.rows_per_tile * self.geom.num_tiles
    }

    /// Image width in columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Programmer-view address of input row `r`, column 0.
    fn in_row_addr(&self, r: usize) -> u32 {
        let tile = r / self.rows_per_tile;
        self.geom.seq_base(tile) + ((r % self.rows_per_tile) * self.width * 4) as u32
    }

    /// Programmer-view address of output row `r`, column 0.
    fn out_row_addr(&self, r: usize) -> u32 {
        self.in_row_addr(r) + (self.rows_per_tile * self.width * 4) as u32
    }

    fn image(&self, seed: u64) -> Vec<i32> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x636f_6e76);
        (0..self.height() * self.width)
            .map(|_| rng.gen_range(-128..128))
            .collect()
    }
}

impl Kernel for Conv2d {
    fn name(&self) -> &'static str {
        "2dconv"
    }

    fn geometry(&self) -> &Geometry {
        &self.geom
    }

    fn source(&self) -> String {
        let w = self.width;
        let rpt = self.rows_per_tile;
        let rpc = rpt / self.geom.cores_per_tile;
        let h = self.height();
        let log2_rpt = rpt.trailing_zeros();
        let log2_seq = self.geom.seq_bytes.trailing_zeros();
        let log2_row = (w * 4).trailing_zeros();
        let out_off = (rpt * w * 4) as u32;
        // Row-base computation: base(r) = (r >> log2_rpt) << log2_seq
        //                              | (r & (rpt-1)) << log2_row.
        let row_base = |target: &str, row_reg: &str| {
            format!(
                "\tsrli t0, {row_reg}, {log2_rpt}\n\
                 \tslli t0, t0, {log2_seq}\n\
                 \tandi t1, {row_reg}, {rpt_mask}\n\
                 \tslli t1, t1, {log2_row}\n\
                 \tadd  {target}, t0, t1\n",
                rpt_mask = rpt - 1,
            )
        };
        format!(
            "{prologue}\
             \tli   t0, {rpc}\n\
             \tmul  s3, s0, t0            # first row\n\
             \tadd  s4, s3, t0            # one past last\n\
             row_loop:\n\
             \tbeqz s3, next_row          # skip image top\n\
             \tli   t2, {last_row}\n\
             \tbge  s3, t2, next_row      # skip image bottom\n\
             \t# pointers to rows r-1, r, r+1 (column 1) and output row\n\
             \taddi a3, s3, -1\n\
             {base_m}\
             \taddi s5, a4, 4\n\
             \taddi a3, s3, 0\n\
             {base_0}\
             \taddi s6, a4, 4\n\
             \taddi a3, s3, 1\n\
             {base_p}\
             \taddi s7, a4, 4\n\
             \taddi a3, s3, 0\n\
             {base_o}\
             \tli   t2, {out_off}\n\
             \tadd  s8, a4, t2\n\
             \taddi s8, s8, 4\n\
             \tli   s9, {interior}        # interior columns\n\
             col_loop:\n\
             \tlw   a0, -4(s5)\n\
             \tlw   a1, 0(s5)\n\
             \tlw   a2, 4(s5)\n\
             \tlw   a3, -4(s6)\n\
             \tlw   a4, 0(s6)\n\
             \tlw   a5, 4(s6)\n\
             \tlw   a6, -4(s7)\n\
             \tlw   a7, 0(s7)\n\
             \tlw   t0, 4(s7)\n\
             \tadd  t1, a0, a2            # corners\n\
             \tadd  t1, t1, a6\n\
             \tadd  t1, t1, t0\n\
             \tadd  t2, a1, a3            # edges\n\
             \tadd  t2, t2, a5\n\
             \tadd  t2, t2, a7\n\
             \tslli t2, t2, 1\n\
             \tadd  t1, t1, t2\n\
             \tslli t3, a4, 2             # centre\n\
             \tadd  t1, t1, t3\n\
             \tsrai t1, t1, 4\n\
             \tsw   t1, (s8)\n\
             \taddi s5, s5, 4\n\
             \taddi s6, s6, 4\n\
             \taddi s7, s7, 4\n\
             \taddi s8, s8, 4\n\
             \taddi s9, s9, -1\n\
             \tbnez s9, col_loop\n\
             next_row:\n\
             \taddi s3, s3, 1\n\
             \tblt  s3, s4, row_loop\n\
             {epilogue}",
            prologue = emit_prologue(&self.geom),
            epilogue = emit_epilogue(),
            last_row = h - 1,
            interior = w - 2,
            base_m = row_base("a4", "a3"),
            base_0 = row_base("a4", "a3"),
            base_p = row_base("a4", "a3"),
            base_o = row_base("a4", "a3"),
        )
    }

    fn init(&self, cluster: &mut dyn L1Memory, seed: u64) {
        let image = self.image(seed);
        let w = self.width;
        for r in 0..self.height() {
            let row: Vec<u32> = image[r * w..(r + 1) * w].iter().map(|&x| x as u32).collect();
            cluster.write_words(self.in_row_addr(r), &row).expect("kernel layout fits in L1");
            cluster.write_words(self.out_row_addr(r), &vec![0; w]).expect("kernel layout fits in L1");
        }
    }

    fn check(&self, cluster: &dyn L1Memory, seed: u64) -> Result<(), CheckKernelError> {
        let image = self.image(seed);
        let expect = conv2d_3x3_i32(&image, self.height(), self.width);
        for r in 0..self.height() {
            let got = cluster.read_words(self.out_row_addr(r), self.width).expect("kernel layout fits in L1");
            for c in 0..self.width {
                let e = expect[r * self.width + c];
                if e as u32 != got[c] {
                    return Err(CheckKernelError::new(format!(
                        "out[{r}][{c}]: expected {e}, got {}",
                        got[c] as i32
                    )));
                }
            }
        }
        Ok(())
    }
}
