//! `fft`: an n-point iterative radix-2 complex FFT distributed over all
//! cores, with a cluster barrier between stages.
//!
//! This is the workload class the paper's conclusion singles out: unlike
//! systolic arrays with rigid neighbor links, MemPool's "much lower latency
//! and higher bandwidth for all the global accesses … enables us to run
//! 'non-systolic' algorithms effectively". Every FFT stage reads and writes
//! element pairs `2^s` apart — strides that sweep from neighboring words to
//! half the array — so the traffic pattern exercises the full interconnect,
//! and the `log2(n)` barriers exercise cluster-wide synchronization.
//!
//! Arithmetic is Q15 fixed point; the Rust golden model performs bit-equal
//! operations.

use crate::matmul::BuildKernelError;
use crate::runtime::{emit_barrier_with_backoff, emit_epilogue, emit_prologue, emit_region};
use crate::{CheckKernelError, Geometry, Kernel};
use mempool::L1Memory;
use mempool_rng::StdRng;
use mempool_rng::{Rng, SeedableRng};

/// Q15 twiddle factors `W_n^k = exp(-2πik/n)` for `k < n/2`, as
/// `(re, im)` pairs (cos clamped to 32767).
pub fn twiddle_table(n: usize) -> Vec<(i32, i32)> {
    (0..n / 2)
        .map(|k| {
            let angle = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            let re = (angle.cos() * 32768.0).round().min(32767.0) as i32;
            let im = (angle.sin() * 32768.0).round().min(32767.0) as i32;
            (re, im)
        })
        .collect()
}

/// Bit-reverses `i` within `bits` bits.
fn bit_reverse(i: usize, bits: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - bits)
}

/// The fixed-point FFT the assembly kernel implements, on natural-order
/// input (the kernel receives its input pre-permuted into bit-reversed
/// order and produces natural-order output).
///
/// # Panics
///
/// Panics unless `input.len()` is a power of two.
pub fn fft_q15(input: &[(i32, i32)]) -> Vec<(i32, i32)> {
    let n = input.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    let bits = n.trailing_zeros();
    let tw = twiddle_table(n);
    let mut a = vec![(0i32, 0i32); n];
    for (i, &v) in input.iter().enumerate() {
        a[bit_reverse(i, bits)] = v;
    }
    for s in 0..bits {
        let half = 1usize << s;
        let shift = bits - 1 - s;
        for b in 0..n / 2 {
            let j = b & (half - 1);
            let k = (b - j) << 1;
            let (ar, ai) = a[k + j];
            let (br, bi) = a[k + j + half];
            let (wr, wi) = tw[j << shift];
            let tr = (br.wrapping_mul(wr).wrapping_sub(bi.wrapping_mul(wi))) >> 15;
            let ti = (br.wrapping_mul(wi).wrapping_add(bi.wrapping_mul(wr))) >> 15;
            a[k + j] = (ar.wrapping_add(tr), ai.wrapping_add(ti));
            a[k + j + half] = (ar.wrapping_sub(tr), ai.wrapping_sub(ti));
        }
    }
    a
}

/// The distributed FFT benchmark kernel.
#[derive(Debug, Clone)]
pub struct Fft {
    geom: Geometry,
    n: usize,
}

impl Fft {
    /// Creates an `n`-point FFT for the geometry.
    ///
    /// # Errors
    ///
    /// `n` must be a power of two with at least two butterflies per core
    /// (`n/2` divisible by the core count), and data + twiddles must fit
    /// the shared region.
    pub fn new(geom: Geometry, n: usize) -> Result<Fft, BuildKernelError> {
        if !n.is_power_of_two() || n < 4 {
            return Err(BuildKernelError::new("n must be a power of two >= 4"));
        }
        if !(n / 2).is_multiple_of(geom.num_cores()) {
            return Err(BuildKernelError::new(
                "n/2 butterflies must split evenly across the cores",
            ));
        }
        let bytes = (n * 8 + n / 2 * 8) as u32;
        if bytes > geom.data_bytes() {
            return Err(BuildKernelError::new(format!(
                "fft needs {bytes} B, shared region has {} B",
                geom.data_bytes()
            )));
        }
        Ok(Fft { geom, n })
    }

    /// FFT length in complex points.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Base of the complex data array (interleaved `re, im` words).
    fn data_base(&self) -> u32 {
        self.geom.data_base()
    }

    fn twiddle_base(&self) -> u32 {
        self.data_base() + (self.n * 8) as u32
    }

    fn input(&self, seed: u64) -> Vec<(i32, i32)> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6666_7400);
        (0..self.n)
            .map(|_| (rng.gen_range(-128..128), rng.gen_range(-128..128)))
            .collect()
    }
}

impl Kernel for Fft {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn geometry(&self) -> &Geometry {
        &self.geom
    }

    fn source(&self) -> String {
        let n = self.n;
        let log2n = n.trailing_zeros();
        let bpc = n / 2 / self.geom.num_cores();
        format!(
            "{prologue}\
             \tli   s3, 0                 # stage\n\
             \tli   a6, {bpc}\n\
             \tmul  s4, s0, a6            # first butterfly of this core\n\
             stage_loop:\n\
             {mark_compute}\
             \tli   t0, 1\n\
             \tsll  s6, t0, s3            # half = 1 << stage\n\
             \tli   t0, {log2n_m1}\n\
             \tsub  s7, t0, s3            # twiddle shift\n\
             \tmv   s8, s4                # b\n\
             \tadd  s9, s4, a6            # end\n\
             bfly_loop:\n\
             \taddi t6, s6, -1\n\
             \tand  t0, s8, t6            # j = b & (half-1)\n\
             \tsub  t4, s8, t0\n\
             \tslli t4, t4, 1             # k = (b - j) * 2\n\
             \tadd  t4, t4, t0            # k + j\n\
             \tslli t1, t4, 3\n\
             \tli   t5, {data}\n\
             \tadd  t1, t1, t5            # &a[k+j]\n\
             \tslli t2, s6, 3\n\
             \tadd  t2, t1, t2            # &a[k+j+half]\n\
             \tsll  t3, t0, s7            # twiddle index = j << shift\n\
             \tslli t3, t3, 3\n\
             \tli   t5, {tw}\n\
             \tadd  t3, t3, t5            # &W[j << shift]\n\
             \tlw   a0, 0(t1)             # ar\n\
             \tlw   a1, 4(t1)             # ai\n\
             \tlw   a2, 0(t2)             # br\n\
             \tlw   a3, 4(t2)             # bi\n\
             \tlw   a4, 0(t3)             # wr\n\
             \tlw   a5, 4(t3)             # wi\n\
             \tmul  t4, a2, a4\n\
             \tmul  t5, a3, a5\n\
             \tsub  t4, t4, t5\n\
             \tsrai a7, t4, 15            # tr\n\
             \tmul  t4, a2, a5\n\
             \tmul  t5, a3, a4\n\
             \tadd  t4, t4, t5\n\
             \tsrai t6, t4, 15            # ti\n\
             \tadd  t4, a0, a7\n\
             \tsw   t4, 0(t1)\n\
             \tadd  t4, a1, t6\n\
             \tsw   t4, 4(t1)\n\
             \tsub  t4, a0, a7\n\
             \tsw   t4, 0(t2)\n\
             \tsub  t4, a1, t6\n\
             \tsw   t4, 4(t2)\n\
             \taddi s8, s8, 1\n\
             \tblt  s8, s9, bfly_loop\n\
             {mark_barrier}\
             \tjal  ra, __barrier         # stage boundary\n\
             \taddi s3, s3, 1\n\
             \tli   t0, {log2n}\n\
             \tblt  s3, t0, stage_loop\n\
             {mark_writeback}\
             {epilogue}\
             {barrier}",
            prologue = emit_prologue(&self.geom),
            epilogue = emit_epilogue(),
            mark_compute = emit_region(mempool_snitch::profile::REGION_COMPUTE),
            mark_barrier = emit_region(mempool_snitch::profile::REGION_BARRIER),
            mark_writeback = emit_region(mempool_snitch::profile::REGION_WRITEBACK),
            barrier = emit_barrier_with_backoff(&self.geom, 8),
            log2n_m1 = log2n - 1,
            data = self.data_base(),
            tw = self.twiddle_base(),
        )
    }

    fn init(&self, mem: &mut dyn L1Memory, seed: u64) {
        let input = self.input(seed);
        let bits = self.n.trailing_zeros();
        // Write the input in bit-reversed order so the in-place kernel
        // produces natural-order output.
        let mut words = vec![0u32; self.n * 2];
        for (i, &(re, im)) in input.iter().enumerate() {
            let r = bit_reverse(i, bits);
            words[2 * r] = re as u32;
            words[2 * r + 1] = im as u32;
        }
        mem.write_words(self.data_base(), &words).expect("kernel layout fits in L1");
        let tw: Vec<u32> = twiddle_table(self.n)
            .iter()
            .flat_map(|&(re, im)| [re as u32, im as u32])
            .collect();
        mem.write_words(self.twiddle_base(), &tw).expect("kernel layout fits in L1");
    }

    fn check(&self, mem: &dyn L1Memory, seed: u64) -> Result<(), CheckKernelError> {
        let expect = fft_q15(&self.input(seed));
        let got = mem.read_words(self.data_base(), self.n * 2).expect("kernel layout fits in L1");
        for (i, &(re, im)) in expect.iter().enumerate() {
            let (gr, gi) = (got[2 * i] as i32, got[2 * i + 1] as i32);
            if (re, im) != (gr, gi) {
                return Err(CheckKernelError::new(format!(
                    "X[{i}]: expected ({re}, {im}), got ({gr}, {gi})"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n²) DFT in f64 for validating the fixed-point math.
    fn dft_f64(input: &[(i32, i32)]) -> Vec<(f64, f64)> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut re = 0.0;
                let mut im = 0.0;
                for (j, &(xr, xi)) in input.iter().enumerate() {
                    let angle = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                    let (c, s) = (angle.cos(), angle.sin());
                    re += xr as f64 * c - xi as f64 * s;
                    im += xr as f64 * s + xi as f64 * c;
                }
                (re, im)
            })
            .collect()
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut input = vec![(0, 0); 16];
        input[0] = (1000, 0);
        let out = fft_q15(&input);
        for (i, &(re, im)) in out.iter().enumerate() {
            assert!((re - 1000).abs() <= 16, "X[{i}].re = {re}");
            assert!(im.abs() <= 16, "X[{i}].im = {im}");
        }
    }

    #[test]
    fn matches_f64_dft_within_fixed_point_error() {
        let mut rng = mempool_rng::StepRng::new(12345, 0x9e37_79b9);
        use mempool_rng::RngCore;
        let input: Vec<(i32, i32)> = (0..64)
            .map(|_| {
                (
                    (rng.next_u32() % 256) as i32 - 128,
                    (rng.next_u32() % 256) as i32 - 128,
                )
            })
            .collect();
        let exact = dft_f64(&input);
        let fixed = fft_q15(&input);
        for (i, (&(fr, fi), &(er, ei))) in fixed.iter().zip(&exact).enumerate() {
            // Q15 truncation error accumulates over log2(64)=6 stages.
            assert!(
                (fr as f64 - er).abs() < 40.0 && (fi as f64 - ei).abs() < 40.0,
                "X[{i}]: fixed ({fr}, {fi}) vs exact ({er:.1}, {ei:.1})"
            );
        }
    }

    #[test]
    fn constant_input_concentrates_in_dc() {
        let n = 32;
        let input = vec![(100, 0); n];
        let out = fft_q15(&input);
        // Bin 0 carries ~n·x (up to Q15 truncation); every other bin is
        // near zero.
        let dc = out[0].0;
        assert!((dc - 3200).abs() < 64, "dc {dc}");
        for (i, &(re, im)) in out.iter().enumerate().skip(1) {
            assert!(re.abs() < 32 && im.abs() < 32, "bin {i}: ({re}, {im})");
        }
    }

    #[test]
    fn constructor_validation() {
        let geom = Geometry {
            num_tiles: 16,
            cores_per_tile: 4,
            banks_per_tile: 16,
            rows_per_bank: 256,
            seq_bytes: 4096,
        };
        assert!(Fft::new(geom, 512).is_ok());
        assert!(Fft::new(geom, 500).is_err()); // not a power of two
        assert!(Fft::new(geom, 64).is_err()); // 32 butterflies < 64 cores
        assert!(Fft::new(geom, 1 << 16).is_err()); // does not fit
    }

    #[test]
    fn twiddle_table_properties() {
        let tw = twiddle_table(64);
        assert_eq!(tw.len(), 32);
        assert_eq!(tw[0], (32767, 0));
        // W^(n/4) = -i.
        assert_eq!(tw[16].0, 0);
        assert_eq!(tw[16].1, -32768);
    }
}
