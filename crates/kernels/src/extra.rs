//! Extension workloads beyond the paper's benchmark suite, with network
//! profiles the original three don't cover:
//!
//! * [`Histogram`] — data-dependent `amoadd.w` bursts onto a handful of hot
//!   banks (the worst case for bank-level round-robin fairness);
//! * [`Transpose`] — all-to-all strided communication (row-major reads,
//!   column-major writes) that loads the network bisection like matmul but
//!   with zero arithmetic to hide behind.

use crate::matmul::BuildKernelError;
use crate::runtime::{emit_epilogue, emit_prologue};
use crate::{CheckKernelError, Geometry, Kernel};
use mempool::L1Memory;
use mempool_rng::StdRng;
use mempool_rng::{Rng, SeedableRng};

/// A 256-bin histogram over `len` byte-valued samples, accumulated with
/// one `amoadd.w` per sample.
#[derive(Debug, Clone)]
pub struct Histogram {
    geom: Geometry,
    len: usize,
    /// Concentration of the sample distribution: `None` = uniform bins,
    /// `Some(bin)` = every sample hits one bin (maximum contention).
    hot_bin: Option<u8>,
}

const BINS: usize = 256;

impl Histogram {
    /// Creates a histogram kernel over `len` samples with uniformly
    /// distributed bin values.
    ///
    /// # Errors
    ///
    /// `len` must be a nonzero multiple of the core count, and samples +
    /// bins must fit the shared region.
    pub fn new(geom: Geometry, len: usize) -> Result<Histogram, BuildKernelError> {
        Histogram::with_distribution(geom, len, None)
    }

    /// Like [`Histogram::new`] but with every sample hitting `hot_bin` —
    /// the maximum-contention variant.
    ///
    /// # Errors
    ///
    /// Same as [`Histogram::new`].
    pub fn hot(geom: Geometry, len: usize, hot_bin: u8) -> Result<Histogram, BuildKernelError> {
        Histogram::with_distribution(geom, len, Some(hot_bin))
    }

    fn with_distribution(
        geom: Geometry,
        len: usize,
        hot_bin: Option<u8>,
    ) -> Result<Histogram, BuildKernelError> {
        if len == 0 || !len.is_multiple_of(geom.num_cores()) {
            return Err(BuildKernelError::new(
                "len must be a nonzero multiple of the core count",
            ));
        }
        if ((len + BINS) * 4) as u32 > geom.data_bytes() {
            return Err(BuildKernelError::new("samples exceed the shared region"));
        }
        Ok(Histogram { geom, len, hot_bin })
    }

    fn samples_base(&self) -> u32 {
        self.geom.data_base()
    }

    /// Address of bin 0.
    pub fn bins_base(&self) -> u32 {
        self.samples_base() + (self.len * 4) as u32
    }

    fn samples(&self, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6869_7374);
        (0..self.len)
            .map(|_| match self.hot_bin {
                Some(bin) => u32::from(bin),
                None => rng.gen_range(0..BINS as u32),
            })
            .collect()
    }
}

impl Kernel for Histogram {
    fn name(&self) -> &'static str {
        "histogram"
    }

    fn geometry(&self) -> &Geometry {
        &self.geom
    }

    fn source(&self) -> String {
        let per_core = self.len / self.geom.num_cores();
        format!(
            "{prologue}\
             \tli   t0, {per_core}\n\
             \tmul  t1, s0, t0\n\
             \tslli t1, t1, 2\n\
             \tli   t2, {samples}\n\
             \tadd  t2, t2, t1            # sample pointer\n\
             \tli   t3, {per_core}\n\
             \tli   t4, {bins}\n\
             \tli   t5, 1\n\
             loop:\n\
             \tlw   a0, (t2)\n\
             \tslli a0, a0, 2\n\
             \tadd  a0, a0, t4            # &bins[sample]\n\
             \tamoadd.w zero, t5, (a0)\n\
             \taddi t2, t2, 4\n\
             \taddi t3, t3, -1\n\
             \tbnez t3, loop\n\
             {epilogue}",
            prologue = emit_prologue(&self.geom),
            epilogue = emit_epilogue(),
            samples = self.samples_base(),
            bins = self.bins_base(),
        )
    }

    fn init(&self, cluster: &mut dyn L1Memory, seed: u64) {
        cluster.write_words(self.samples_base(), &self.samples(seed)).expect("kernel layout fits in L1");
        cluster.write_words(self.bins_base(), &vec![0; BINS]).expect("kernel layout fits in L1");
    }

    fn check(&self, cluster: &dyn L1Memory, seed: u64) -> Result<(), CheckKernelError> {
        let mut expect = vec![0u32; BINS];
        for s in self.samples(seed) {
            expect[s as usize] += 1;
        }
        let got = cluster.read_words(self.bins_base(), BINS).expect("kernel layout fits in L1");
        for (bin, (&e, &g)) in expect.iter().zip(&got).enumerate() {
            if e != g {
                return Err(CheckKernelError::new(format!(
                    "bin {bin}: expected {e}, got {g}"
                )));
            }
        }
        Ok(())
    }
}

/// An out-of-place n×n matrix transpose: contiguous reads, strided writes.
#[derive(Debug, Clone)]
pub struct Transpose {
    geom: Geometry,
    n: usize,
}

impl Transpose {
    /// Creates an n×n transpose.
    ///
    /// # Errors
    ///
    /// `n` must be a power of two with `n²` divisible by the core count,
    /// and both matrices must fit the shared region.
    pub fn new(geom: Geometry, n: usize) -> Result<Transpose, BuildKernelError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(BuildKernelError::new("n must be a power of two >= 2"));
        }
        if !(n * n).is_multiple_of(geom.num_cores()) {
            return Err(BuildKernelError::new("n*n must divide by the core count"));
        }
        if n * 4 > 2048 {
            return Err(BuildKernelError::new("row stride exceeds immediate range"));
        }
        if (2 * n * n * 4) as u32 > geom.data_bytes() {
            return Err(BuildKernelError::new("matrices exceed the shared region"));
        }
        Ok(Transpose { geom, n })
    }

    fn in_base(&self) -> u32 {
        self.geom.data_base()
    }

    fn out_base(&self) -> u32 {
        self.in_base() + (self.n * self.n * 4) as u32
    }

    fn input(&self, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7472_616e);
        (0..self.n * self.n).map(|_| rng.gen()).collect()
    }
}

impl Kernel for Transpose {
    fn name(&self) -> &'static str {
        "transpose"
    }

    fn geometry(&self) -> &Geometry {
        &self.geom
    }

    fn source(&self) -> String {
        let n = self.n;
        let log2n = n.trailing_zeros();
        let epc = n * n / self.geom.num_cores();
        format!(
            "{prologue}\
             \tli   a6, {epc}\n\
             \tmul  s3, s0, a6            # first element (row-major index)\n\
             \tadd  s4, s3, a6\n\
             loop:\n\
             \tsrli t0, s3, {log2n}       # row\n\
             \tandi t1, s3, {n_mask}      # col\n\
             \tslli t2, s3, 2\n\
             \tli   t3, {in_base}\n\
             \tadd  t2, t2, t3            # &in[row][col]\n\
             \tlw   a0, (t2)\n\
             \t# out index = col*n + row\n\
             \tslli t4, t1, {log2n}\n\
             \tadd  t4, t4, t0\n\
             \tslli t4, t4, 2\n\
             \tli   t5, {out_base}\n\
             \tadd  t4, t4, t5\n\
             \tsw   a0, (t4)\n\
             \taddi s3, s3, 1\n\
             \tblt  s3, s4, loop\n\
             {epilogue}",
            prologue = emit_prologue(&self.geom),
            epilogue = emit_epilogue(),
            n_mask = n - 1,
            in_base = self.in_base(),
            out_base = self.out_base(),
        )
    }

    fn init(&self, cluster: &mut dyn L1Memory, seed: u64) {
        cluster.write_words(self.in_base(), &self.input(seed)).expect("kernel layout fits in L1");
        cluster.write_words(self.out_base(), &vec![0; self.n * self.n]).expect("kernel layout fits in L1");
    }

    fn check(&self, cluster: &dyn L1Memory, seed: u64) -> Result<(), CheckKernelError> {
        let input = self.input(seed);
        let got = cluster.read_words(self.out_base(), self.n * self.n).expect("kernel layout fits in L1");
        for r in 0..self.n {
            for c in 0..self.n {
                let e = input[r * self.n + c];
                let g = got[c * self.n + r];
                if e != g {
                    return Err(CheckKernelError::new(format!(
                        "out[{c}][{r}]: expected {e}, got {g}"
                    )));
                }
            }
        }
        Ok(())
    }
}
