//! # mempool-kernels
//!
//! The real-world signal-processing benchmarks of the MemPool paper
//! (§V-C), written in RV32IMA assembly against the cluster's
//! programmer-view memory layout, with bit-exact golden models:
//!
//! * [`Matmul`] — n×n integer matrix multiplication over the shared
//!   interleaved region (predominantly **remote** accesses);
//! * [`Conv2d`] — 3×3 discrete convolution with image rows distributed
//!   across the tiles' sequential regions (**local** except tile-boundary
//!   halos);
//! * [`Dct`] — 8×8 two-dimensional DCT on per-core local blocks, spilling
//!   its intermediate matrix to the **stack** (the access pattern the
//!   hybrid addressing scheme is built for).
//!
//! Because the kernels compute addresses against the layout — not against
//! the physical map — running the *same binary* with the cluster's
//! scrambler on and off is exactly the paper's Top◆S vs Top◆ comparison of
//! Fig. 7.
//!
//! # Examples
//!
//! ```no_run
//! use mempool::{ClusterConfig, Topology};
//! use mempool_kernels::{run_kernel, Geometry, Kernel, Matmul};
//!
//! let config = ClusterConfig::small(Topology::TopH);
//! let geom = Geometry::from_config(&config, 4096);
//! let kernel = Matmul::new(geom, 32)?;
//! let run = run_kernel(&kernel, config, 42, 10_000_000)?;
//! println!("matmul finished in {} cycles", run.cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod conv2d;
mod dct;
mod extra;
mod fft;
mod geometry;
mod golden;
mod matmul;
mod runner;
mod runtime;
mod streams;

pub use conv2d::Conv2d;
pub use dct::Dct;
pub use extra::{Histogram, Transpose};
pub use fft::{fft_q15, twiddle_table, Fft};
pub use geometry::{Geometry, GeometryMismatchError};
pub use golden::{conv2d_3x3_i32, dct8x8_q7, dct_coefficients, dotprod_i32, matmul_i32, CONV_KERNEL};
pub use matmul::{BuildKernelError, Matmul};
pub use runner::{
    build_program, run_kernel, run_kernel_functional, CheckKernelError, Kernel, KernelRun,
    ProgramBuildError, RunKernelError,
};
pub use runtime::{
    emit_barrier, emit_barrier_with_backoff, emit_epilogue, emit_prologue, emit_region,
    emit_tree_barrier, emit_tree_barrier_with_backoff,
};
pub use streams::{Axpy, DotProduct};
