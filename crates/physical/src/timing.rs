//! Analytical timing model, calibrated against §VI-C: TopH closes at
//! 700 MHz in typical conditions (TT/0.80 V/25 °C) and 480 MHz at worst
//! case (SS/0.72 V/125 °C), with a 36-gate cluster critical path of which
//! 37 % is wire propagation delay (27 of the 36 gates being buffers or
//! inverter pairs).

use mempool::{ClusterConfig, Topology};

/// Average gate delay (ps) of the 22FDX standard cells on the critical
/// path at typical conditions, calibrated so the TopH numbers reproduce.
pub const GATE_DELAY_TT_PS: f64 = 25.0;
/// Worst-case / typical delay derating (SS/0.72 V/125 °C vs TT/0.80 V/25 °C).
pub const SS_DERATE: f64 = 700.0 / 480.0;

/// Process corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corner {
    /// Typical: TT / 0.80 V / 25 °C.
    Typical,
    /// Worst case: SS / 0.72 V / 125 °C.
    WorstCase,
}

/// A critical-path description and the frequencies it supports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Logic gates on the critical path.
    pub path_gates: u32,
    /// Of which buffers / inverter pairs (repeaters fighting wire delay).
    pub repeater_gates: u32,
    /// Wire propagation share of the cycle time.
    pub wire_fraction: f64,
    /// Achievable frequency at typical conditions (MHz).
    pub f_typ_mhz: f64,
    /// Achievable frequency at worst-case conditions (MHz).
    pub f_wc_mhz: f64,
    /// Whether the back end converges at a reasonable clock at all.
    pub feasible: bool,
}

impl TimingReport {
    /// Frequency at the given corner (MHz).
    pub fn frequency(&self, corner: Corner) -> f64 {
        match corner {
            Corner::Typical => self.f_typ_mhz,
            Corner::WorstCase => self.f_wc_mhz,
        }
    }
}

fn report(path_gates: u32, repeater_gates: u32, wire_fraction: f64, feasible: bool) -> TimingReport {
    // Cycle time = logic delay / (1 - wire fraction).
    let logic_ps = f64::from(path_gates) * GATE_DELAY_TT_PS;
    let cycle_ps = logic_ps / (1.0 - wire_fraction);
    let f_typ = 1e6 / cycle_ps;
    TimingReport {
        path_gates,
        repeater_gates,
        wire_fraction,
        f_typ_mhz: f_typ,
        f_wc_mhz: f_typ / SS_DERATE,
        feasible,
    }
}

/// The standalone tile's timing (§VI-B): a 53-gate path from the I-cache
/// output register, through the second Snitch core and the request
/// interconnect, into an SPM bank. Short intra-macro wires.
pub fn tile_timing(_config: &ClusterConfig) -> TimingReport {
    report(53, 12, 0.12, true)
}

/// The cluster-level timing per topology (§VI-C).
///
/// TopH's path starts at a local-group boundary, crosses the cluster
/// center and another group, and ends in a Snitch ROB: few logic levels,
/// dominated by repeaters and wire flight time. Top1 closes lower because
/// all global wiring funnels through the congested center; Top4 does not
/// converge at all.
pub fn cluster_timing(config: &ClusterConfig) -> TimingReport {
    match config.topology {
        Topology::TopH => report(36, 27, 0.37, true),
        Topology::Top1 => report(36, 27, 0.48, true),
        Topology::Top4 => report(36, 27, 0.75, false),
        // The ideal crossbar is a modeling construct, not implementable.
        Topology::Ideal => report(36, 27, 0.95, false),
    }
}

/// One point of a voltage–frequency–energy scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage (V).
    pub voltage: f64,
    /// Achievable frequency at typical conditions (MHz).
    pub f_mhz: f64,
    /// Energy-per-operation multiplier relative to the 0.80 V calibration
    /// point (CV² dynamic energy).
    pub energy_scale: f64,
}

/// Alpha-power-law DVFS model around the paper's TT calibration point
/// (0.80 V → TopH at 700 MHz): `f ∝ (V − V_t)^1.3 / V` with a 0.35 V
/// threshold typical of 22FDX regular-Vt libraries, and dynamic energy
/// scaling as `V²`. A *model extension* — the paper reports only the two
/// sign-off corners.
///
/// # Panics
///
/// Panics if `voltage` does not exceed the threshold voltage.
pub fn operating_point(config: &ClusterConfig, voltage: f64) -> OperatingPoint {
    const V_NOM: f64 = 0.80;
    const V_T: f64 = 0.35;
    const ALPHA: f64 = 1.3;
    assert!(voltage > V_T, "voltage must exceed the 0.35 V threshold");
    let f_nom = cluster_timing(config).f_typ_mhz;
    let shape = |v: f64| (v - V_T).powf(ALPHA) / v;
    OperatingPoint {
        voltage,
        f_mhz: f_nom * shape(voltage) / shape(V_NOM),
        energy_scale: (voltage / V_NOM).powi(2),
    }
}

/// A voltage sweep of [`operating_point`].
pub fn dvfs_curve(config: &ClusterConfig, voltages: &[f64]) -> Vec<OperatingPoint> {
    voltages
        .iter()
        .map(|&v| operating_point(config, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toph_frequencies_match_paper() {
        let cfg = ClusterConfig::paper(Topology::TopH);
        let t = cluster_timing(&cfg);
        assert!((t.f_typ_mhz - 700.0).abs() < 35.0, "TT {}", t.f_typ_mhz);
        assert!((t.f_wc_mhz - 480.0).abs() < 25.0, "SS {}", t.f_wc_mhz);
        assert!((t.wire_fraction - 0.37).abs() < 1e-9);
        assert_eq!(t.path_gates, 36);
        assert_eq!(t.repeater_gates, 27);
        assert!(t.feasible);
    }

    #[test]
    fn tile_is_faster_than_cluster() {
        let cfg = ClusterConfig::paper(Topology::TopH);
        // The tile path has more gates but almost no wire delay; it still
        // must not limit the cluster clock.
        let tile = tile_timing(&cfg);
        let cluster = cluster_timing(&cfg);
        assert!(tile.feasible);
        assert!(tile.f_typ_mhz > 0.8 * cluster.f_typ_mhz);
    }

    #[test]
    fn topology_feasibility() {
        let t = |topo| cluster_timing(&ClusterConfig::paper(topo));
        assert!(t(Topology::Top1).feasible);
        assert!(!t(Topology::Top4).feasible);
        assert!(t(Topology::TopH).feasible);
        assert!(!t(Topology::Ideal).feasible);
        assert!(t(Topology::Top1).f_typ_mhz < t(Topology::TopH).f_typ_mhz);
    }

    #[test]
    fn dvfs_calibration_and_monotonicity() {
        let cfg = ClusterConfig::paper(Topology::TopH);
        let nominal = operating_point(&cfg, 0.80);
        assert!((nominal.f_mhz - 700.0).abs() < 35.0, "{}", nominal.f_mhz);
        assert!((nominal.energy_scale - 1.0).abs() < 1e-12);
        let curve = dvfs_curve(&cfg, &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0]);
        for pair in curve.windows(2) {
            assert!(pair[1].f_mhz > pair[0].f_mhz, "frequency not monotone");
            assert!(pair[1].energy_scale > pair[0].energy_scale);
        }
        // Low voltage trades frequency for energy: at 0.6 V the cluster is
        // slower but each op is cheaper.
        let low = operating_point(&cfg, 0.6);
        assert!(low.f_mhz < 0.7 * nominal.f_mhz);
        assert!(low.energy_scale < 0.6);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn sub_threshold_voltage_rejected() {
        let _ = operating_point(&ClusterConfig::paper(Topology::TopH), 0.3);
    }

    #[test]
    fn corner_accessor() {
        let t = cluster_timing(&ClusterConfig::paper(Topology::TopH));
        assert_eq!(t.frequency(Corner::Typical), t.f_typ_mhz);
        assert_eq!(t.frequency(Corner::WorstCase), t.f_wc_mhz);
    }
}
