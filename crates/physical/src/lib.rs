//! # mempool-physical
//!
//! Analytical physical-implementation models of the MemPool cluster in
//! GF 22FDX, calibrated against §VI of the paper:
//!
//! * [`area`] — kGE roll-up of tiles and interconnect, macro sizes,
//!   utilization, and the center-congestion heuristic that declares Top4
//!   physically infeasible (§VI-B, §VI-C, Fig. 8/9);
//! * [`timing`] — critical-path / wire-delay model reproducing TopH's
//!   700 MHz (TT) / 480 MHz (SS) and the 37 % wire-delay share (§VI-C);
//! * [`mod@energy`] — per-event energy table reproducing Fig. 10 (8.4 pJ local
//!   vs 16.9 pJ remote loads) and the 20.9 mW tile / 1.55 W cluster power
//!   of §VI-D, driven by activity counters from the cycle-accurate
//!   simulator;
//! * [`mod@power`] — the same energy table applied per sampling window: turns
//!   the profiler's activity series into the `mempool-power-v1`
//!   power-over-time document (per-tile and cluster watts,
//!   compute-vs-interconnect split).
//!
//! These are *models*, not EDA results: the paper's reported silicon
//! numbers are encoded as calibrated constants so the same breakdowns can
//! be regenerated, swept, and composed with simulated activity. Each
//! substitution is documented in `DESIGN.md` / `EXPERIMENTS.md`.
//!
//! # Examples
//!
//! ```
//! use mempool::{ClusterConfig, Topology};
//! use mempool_physical::{area, timing};
//!
//! let config = ClusterConfig::paper(Topology::TopH);
//! let cluster = area::cluster_area(&config);
//! assert!((cluster.edge_mm - 4.6).abs() < 0.1);
//! let t = timing::cluster_timing(&config);
//! assert!(t.feasible && t.f_typ_mhz > 650.0);
//! ```

#![warn(missing_docs)]

pub mod area;
pub mod energy;
pub mod floorplan;
pub mod power;
pub mod timing;

pub use area::{cluster_area, interconnect_area, tile_area, ClusterArea, InterconnectArea, TileArea};
pub use energy::{
    cluster_power_w, energy, instruction_energy, instruction_energy_table, tile_power_mw,
    Activity, EnergyBreakdown, InstructionEnergy, MissingCounterError, ACTIVITY_COUNTERS,
};
pub use floorplan::{congestion_summary, floorplan, Floorplan};
pub use power::{power_timeline, power_timeline_json, window_power, WindowPower, POWER_SCHEMA};
pub use timing::{
    cluster_timing, dvfs_curve, operating_point, tile_timing, Corner, OperatingPoint,
    TimingReport,
};
