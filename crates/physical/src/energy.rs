//! Per-event energy model, calibrated against §VI-D and Fig. 10 of the
//! paper (TT / 0.80 V / 25 °C):
//!
//! * a local load costs 8.4 pJ, of which 4.5 pJ in the (tile-local)
//!   interconnect — about as much as a `mul` and 2.3× an `add`;
//! * a remote load costs 16.9 pJ, of which 13.0 pJ in interconnects
//!   (2.9× the interconnect energy of a local load);
//! * running `matmul` at 500 MHz, a tile consumes 20.9 mW — I-cache
//!   39.5 %, cores 26.6 %, SPM banks 12.6 %, tile interconnects < 10 % —
//!   and the cluster 1.55 W, 86 % of it inside the tiles.
//!
//! The model books tile-side energy (core, I$, SPM, tile crossbars) per
//! tile and global-interconnect energy at the cluster top level, which is
//! how the paper's 1.7 mW tile-interconnect figure coexists with the
//! 13 pJ remote-load interconnect energy.

use mempool::ClusterStats;
use mempool_mem::CacheStats;
use mempool_snitch::CoreStats;

/// Calibrated per-event energies in picojoules.
pub mod pj {
    /// Simple ALU instruction (`add` class), total.
    pub const ADD: f64 = 3.7;
    /// Multiply instruction, total.
    pub const MUL: f64 = 8.2;
    /// Divide/remainder instruction (serial divider), total.
    pub const DIV: f64 = 9.5;
    /// Core-side share of any memory instruction (LSU, ROB).
    pub const CORE_MEM: f64 = 1.9;
    /// Core idle/clocking energy per core per cycle.
    pub const CORE_IDLE: f64 = 0.4;
    /// One I-cache lookup.
    pub const ICACHE_FETCH: f64 = 4.5;
    /// One I-cache line refill over the AXI ring.
    pub const ICACHE_REFILL: f64 = 60.0;
    /// One SPM bank access.
    pub const SPM_ACCESS: f64 = 2.0;
    /// SPM leakage/precharge per bank per cycle.
    pub const SPM_IDLE: f64 = 0.2;
    /// Tile-interconnect share of a local (same-tile) access.
    pub const NET_TILE_LOCAL: f64 = 4.5;
    /// Tile-interconnect share of a remote access (both end tiles).
    pub const NET_TILE_REMOTE: f64 = 4.0;
    /// Global-interconnect share of a remote access (booked at top level).
    pub const NET_GLOBAL_REMOTE: f64 = 9.0;
    /// Tile clock tree and glue per tile per cycle.
    pub const TILE_IDLE: f64 = 3.0;
}

/// Activity counters extracted from a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Activity {
    /// Cluster cycles simulated.
    pub cycles: u64,
    /// Number of tiles.
    pub num_tiles: usize,
    /// Number of cores.
    pub num_cores: usize,
    /// SPM banks per tile.
    pub banks_per_tile: usize,
    /// Instructions retired (all cores).
    pub instructions: u64,
    /// Multiply instructions.
    pub muls: u64,
    /// Divide instructions.
    pub divs: u64,
    /// Memory instructions (loads + stores + atomics).
    pub memory_ops: u64,
    /// Memory accesses that stayed in the issuing tile.
    pub local_accesses: u64,
    /// Memory accesses that crossed tiles.
    pub remote_accesses: u64,
    /// I-cache lookups.
    pub ifetches: u64,
    /// I-cache refills.
    pub refills: u64,
}

/// A by-name lookup named a counter (or instruction class) that does not
/// exist. Carries the full available set so a stats-schema drift surfaces
/// as a legible report error instead of a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingCounterError {
    /// The name that was requested.
    pub name: String,
    /// The names that do exist.
    pub available: Vec<&'static str>,
}

impl std::fmt::Display for MissingCounterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no counter named `{}`; available: {}",
            self.name,
            self.available.join(", ")
        )
    }
}

impl std::error::Error for MissingCounterError {}

/// The activity-counter names accepted by [`Activity::counter`], in
/// declaration order.
pub const ACTIVITY_COUNTERS: [&str; 8] = [
    "instructions",
    "muls",
    "divs",
    "memory_ops",
    "local_accesses",
    "remote_accesses",
    "ifetches",
    "refills",
];

impl Activity {
    /// Builds the activity record from the three statistics blocks a
    /// kernel run produces.
    pub fn from_run(
        stats: &ClusterStats,
        cores: &CoreStats,
        icache: &CacheStats,
        num_tiles: usize,
        num_cores: usize,
        banks_per_tile: usize,
    ) -> Activity {
        Activity {
            cycles: stats.cycles,
            num_tiles,
            num_cores,
            banks_per_tile,
            instructions: cores.instret,
            muls: cores.muls,
            divs: cores.divs,
            memory_ops: cores.loads + cores.stores + cores.amos,
            local_accesses: stats.local_requests,
            remote_accesses: stats.remote_requests,
            ifetches: icache.hits + icache.misses,
            refills: stats.icache_refills,
        }
    }

    /// Builds the activity record from a `mempool-metrics-v1`
    /// [`MetricsRegistry`](mempool::MetricsRegistry) export — the
    /// observability-layer equivalent of [`Activity::from_run`], usable on
    /// a registry alone (no live cluster required).
    ///
    /// Per-core instruction-class counters are summed over every
    /// `cluster/tile*/core*` scope; locality and refill counters come from
    /// the `cluster` and per-tile scopes.
    ///
    /// # Errors
    ///
    /// [`mempool::MetricsError`] when the registry lacks the `cluster`
    /// scope counters this model needs (e.g. a registry produced by a
    /// different schema).
    pub fn from_registry(
        registry: &mempool::MetricsRegistry,
    ) -> Result<Activity, mempool::MetricsError> {
        let core = |name| registry.sum_counter("cluster/tile", name);
        let icache_hits = registry.sum_counter("cluster/tile", "icache_hits");
        let icache_misses = registry.sum_counter("cluster/tile", "icache_misses");
        Ok(Activity {
            cycles: registry.counter("cluster", "cycles")?,
            num_tiles: registry.num_tiles(),
            num_cores: registry.num_cores(),
            banks_per_tile: registry.banks_per_tile(),
            instructions: core("instret"),
            muls: core("muls"),
            divs: core("divs"),
            memory_ops: core("loads") + core("stores") + core("amos"),
            local_accesses: registry.counter("cluster", "local_requests")?,
            remote_accesses: registry.counter("cluster", "remote_requests")?,
            ifetches: icache_hits + icache_misses,
            refills: registry.counter("cluster", "icache_refills")?,
        })
    }

    /// Looks up an event counter by name (for report generators driven by
    /// a counter-name schema).
    ///
    /// # Errors
    ///
    /// [`MissingCounterError`] naming the unknown counter and the
    /// [`ACTIVITY_COUNTERS`] that do exist.
    pub fn counter(&self, name: &str) -> Result<u64, MissingCounterError> {
        match name {
            "instructions" => Ok(self.instructions),
            "muls" => Ok(self.muls),
            "divs" => Ok(self.divs),
            "memory_ops" => Ok(self.memory_ops),
            "local_accesses" => Ok(self.local_accesses),
            "remote_accesses" => Ok(self.remote_accesses),
            "ifetches" => Ok(self.ifetches),
            "refills" => Ok(self.refills),
            _ => Err(MissingCounterError {
                name: name.to_string(),
                available: ACTIVITY_COUNTERS.to_vec(),
            }),
        }
    }
}

/// Energy split by component (picojoules).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core datapaths (instructions + idle clocking).
    pub cores_pj: f64,
    /// Instruction caches (lookups + refills).
    pub icache_pj: f64,
    /// SPM banks (accesses + leakage).
    pub spm_pj: f64,
    /// Tile-local request/response interconnects.
    pub tile_net_pj: f64,
    /// Tile clock tree and glue.
    pub tile_other_pj: f64,
    /// Global interconnect (top level, outside the tiles).
    pub global_net_pj: f64,
}

impl EnergyBreakdown {
    /// Energy consumed inside the tiles.
    pub fn tiles_pj(&self) -> f64 {
        self.cores_pj + self.icache_pj + self.spm_pj + self.tile_net_pj + self.tile_other_pj
    }

    /// Total cluster energy.
    pub fn total_pj(&self) -> f64 {
        self.tiles_pj() + self.global_net_pj
    }

    /// Fraction of total energy consumed inside the tiles (paper: 86 %).
    pub fn tile_fraction(&self) -> f64 {
        self.tiles_pj() / self.total_pj()
    }
}

/// Computes the energy breakdown of an activity record.
pub fn energy(a: &Activity) -> EnergyBreakdown {
    let alu = a
        .instructions
        .saturating_sub(a.muls + a.divs + a.memory_ops) as f64;
    EnergyBreakdown {
        cores_pj: alu * pj::ADD
            + a.muls as f64 * pj::MUL
            + a.divs as f64 * pj::DIV
            + a.memory_ops as f64 * pj::CORE_MEM
            + (a.num_cores as u64 * a.cycles) as f64 * pj::CORE_IDLE,
        icache_pj: a.ifetches as f64 * pj::ICACHE_FETCH + a.refills as f64 * pj::ICACHE_REFILL,
        spm_pj: (a.local_accesses + a.remote_accesses) as f64 * pj::SPM_ACCESS
            + (a.num_tiles * a.banks_per_tile) as f64 * a.cycles as f64 * pj::SPM_IDLE,
        tile_net_pj: a.local_accesses as f64 * pj::NET_TILE_LOCAL
            + a.remote_accesses as f64 * pj::NET_TILE_REMOTE,
        tile_other_pj: a.num_tiles as f64 * a.cycles as f64 * pj::TILE_IDLE,
        global_net_pj: a.remote_accesses as f64 * pj::NET_GLOBAL_REMOTE,
    }
}

/// Average power of one tile (milliwatts) at `freq_mhz`.
pub fn tile_power_mw(a: &Activity, freq_mhz: f64) -> f64 {
    let b = energy(a);
    let pj_per_cycle = b.tiles_pj() / a.cycles as f64 / a.num_tiles as f64;
    pj_per_cycle * freq_mhz * 1e-6 * 1e3
}

/// Average power of the whole cluster (watts) at `freq_mhz`.
pub fn cluster_power_w(a: &Activity, freq_mhz: f64) -> f64 {
    let b = energy(a);
    b.total_pj() / a.cycles as f64 * freq_mhz * 1e-6
}

/// One row of the Fig. 10 per-instruction energy table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionEnergy {
    /// Instruction class.
    pub name: &'static str,
    /// Total energy (pJ).
    pub total_pj: f64,
    /// Of which spent in interconnects (pJ).
    pub interconnect_pj: f64,
}

/// The Fig. 10 energy-per-instruction table.
pub fn instruction_energy_table() -> Vec<InstructionEnergy> {
    let local_mem = pj::CORE_MEM + pj::SPM_ACCESS + pj::NET_TILE_LOCAL;
    let remote_mem =
        pj::CORE_MEM + pj::SPM_ACCESS + pj::NET_TILE_REMOTE + pj::NET_GLOBAL_REMOTE;
    vec![
        InstructionEnergy {
            name: "add",
            total_pj: pj::ADD,
            interconnect_pj: 0.0,
        },
        InstructionEnergy {
            name: "mul",
            total_pj: pj::MUL,
            interconnect_pj: 0.0,
        },
        InstructionEnergy {
            name: "local load",
            total_pj: local_mem,
            interconnect_pj: pj::NET_TILE_LOCAL,
        },
        InstructionEnergy {
            name: "local store",
            total_pj: local_mem,
            interconnect_pj: pj::NET_TILE_LOCAL,
        },
        InstructionEnergy {
            name: "remote load",
            total_pj: remote_mem,
            interconnect_pj: pj::NET_TILE_REMOTE + pj::NET_GLOBAL_REMOTE,
        },
        InstructionEnergy {
            name: "remote store",
            total_pj: remote_mem,
            interconnect_pj: pj::NET_TILE_REMOTE + pj::NET_GLOBAL_REMOTE,
        },
    ]
}

/// Looks up one row of the Fig. 10 table by instruction-class name.
///
/// # Errors
///
/// [`MissingCounterError`] naming the unknown class and the classes that
/// exist — report code matching on names gets an error, not a panic.
pub fn instruction_energy(name: &str) -> Result<InstructionEnergy, MissingCounterError> {
    let table = instruction_energy_table();
    table
        .iter()
        .find(|e| e.name == name)
        .copied()
        .ok_or_else(|| MissingCounterError {
            name: name.to_string(),
            available: table.iter().map(|e| e.name).collect(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_ratios_match_paper() {
        let get = |name: &str| instruction_energy(name).expect("table row exists");
        let add = get("add");
        let mul = get("mul");
        let ll = get("local load");
        let rl = get("remote load");
        assert!((ll.total_pj - 8.4).abs() < 0.05);
        assert!((rl.total_pj - 16.9).abs() < 0.1);
        assert!((ll.interconnect_pj - 4.5).abs() < 0.05);
        assert!((rl.interconnect_pj - 13.0).abs() < 0.05);
        // "a local load uses … 2.3× the energy consumed by a simple add"
        assert!((ll.total_pj / add.total_pj - 2.3).abs() < 0.05);
        // "even then that is only 4.5× the energy of an add"
        assert!((rl.total_pj / add.total_pj - 4.5).abs() < 0.1);
        // "local load uses about as much energy as … mul"
        assert!((ll.total_pj / mul.total_pj - 1.0).abs() < 0.1);
        // interconnect energy ratio remote/local = 2.9×
        assert!((rl.interconnect_pj / ll.interconnect_pj - 2.9).abs() < 0.05);
        // "local memory requests consume only half of the energy required
        // for remote memory accesses"
        assert!((rl.total_pj / ll.total_pj - 2.0).abs() < 0.05);
    }

    /// An analytically constructed matmul-like activity on the paper
    /// configuration (IPC and access mix measured from the simulator).
    fn matmul_like() -> Activity {
        let cycles = 8_651u64;
        Activity {
            cycles,
            num_tiles: 64,
            num_cores: 256,
            banks_per_tile: 16,
            instructions: (0.645 * 256.0 * cycles as f64) as u64,
            muls: (0.118 * 256.0 * cycles as f64) as u64,
            divs: 0,
            memory_ops: (0.24 * 256.0 * cycles as f64) as u64,
            local_accesses: (0.012 * 256.0 * cycles as f64) as u64,
            remote_accesses: (0.228 * 256.0 * cycles as f64) as u64,
            ifetches: (0.9 * 256.0 * cycles as f64) as u64,
            refills: 64 * 8,
        }
    }

    #[test]
    fn from_registry_matches_from_run() {
        let program = mempool_riscv::assemble(
            "li a0, 0x8000\n\
             li a1, 1\n\
             amoadd.w a2, a1, (a0)\n\
             fence\n\
             ecall\n",
        )
        .expect("valid program");
        let config = mempool::ClusterConfig::small(mempool::Topology::TopH);
        let mut cluster = mempool::Cluster::snitch(config).expect("valid config");
        cluster.load_program(&program).expect("loads");
        cluster.run(100_000).expect("finishes");

        let from_run = Activity::from_run(
            cluster.stats(),
            &cluster.core_stats_total(),
            &cluster.icache_stats(),
            cluster.config().num_tiles,
            cluster.config().num_cores(),
            cluster.config().banks_per_tile,
        );
        let from_registry =
            Activity::from_registry(&cluster.metrics_registry()).expect("schema matches");
        assert_eq!(from_registry, from_run);
    }

    #[test]
    fn tile_power_near_paper_value() {
        let p = tile_power_mw(&matmul_like(), 500.0);
        assert!((p - 20.9).abs() < 3.0, "tile power {p} mW");
    }

    #[test]
    fn cluster_power_near_paper_value() {
        let a = matmul_like();
        let p = cluster_power_w(&a, 500.0);
        assert!((p - 1.55).abs() < 0.25, "cluster power {p} W");
        let frac = energy(&a).tile_fraction();
        assert!((frac - 0.86).abs() < 0.05, "tile fraction {frac}");
    }

    #[test]
    fn idle_cluster_draws_little() {
        let idle = Activity {
            cycles: 1000,
            num_tiles: 64,
            num_cores: 256,
            banks_per_tile: 16,
            ..Activity::default()
        };
        let p = cluster_power_w(&idle, 500.0);
        let busy = cluster_power_w(&matmul_like(), 500.0);
        assert!(p < 0.35 * busy, "idle {p} W vs busy {busy} W");
    }

    #[test]
    fn missing_instruction_class_is_a_typed_error() {
        let err = instruction_energy("remote amoadd").expect_err("no such row");
        assert_eq!(err.name, "remote amoadd");
        assert!(err.available.contains(&"remote load"));
        let msg = err.to_string();
        assert!(msg.contains("`remote amoadd`"), "{msg}");
        assert!(msg.contains("remote load"), "{msg}");
    }

    #[test]
    fn missing_activity_counter_is_a_typed_error() {
        let a = matmul_like();
        assert_eq!(a.counter("muls"), Ok(a.muls));
        assert_eq!(a.counter("refills"), Ok(a.refills));
        let err = a.counter("fp_ops").expect_err("no such counter");
        assert_eq!(err.name, "fp_ops");
        assert_eq!(err.available, ACTIVITY_COUNTERS.to_vec());
        assert!(err.to_string().contains("fp_ops"));
        // Every advertised name resolves.
        for name in ACTIVITY_COUNTERS {
            assert!(a.counter(name).is_ok(), "{name} must resolve");
        }
    }

    #[test]
    fn energy_scales_with_locality() {
        let mut local = matmul_like();
        local.local_accesses += local.remote_accesses;
        local.remote_accesses = 0;
        let e_local = energy(&local).total_pj();
        let e_remote = energy(&matmul_like()).total_pj();
        assert!(e_local < e_remote);
    }
}
