//! Qualitative floorplan rendering — the reproduction's stand-in for the
//! place-and-route screenshots of Fig. 8 and Fig. 9.
//!
//! The model places the tiles on a square grid (the paper's 8×8 tile
//! arrangement for 64 tiles) and accumulates global-interconnect wiring
//! density along straight tile-to-hub routes:
//!
//! * `Top1`/`Top4` butterflies are physically centralized — every tile's
//!   remote wiring runs to the cluster center (×1 or ×4 ports), which is
//!   exactly why "all wiring and cells are drawn towards the center of the
//!   design" (Fig. 9a) and why Top4, four times as dense, fails to route;
//! * `TopH` routes local-group traffic to each *group* hub and only the
//!   inter-group channels across the die, with the NE channels crossing
//!   the center diagonally — "TopH distributes the cells and the wiring
//!   throughout the cluster" (Fig. 9b).

use crate::area::interconnect_area;
use mempool::{ClusterConfig, Topology};

/// A wiring-density heatmap over the cluster floorplan.
#[derive(Debug, Clone)]
pub struct Floorplan {
    /// Canvas resolution (cells per edge; 2 cells per tile edge + 1).
    pub size: usize,
    /// Accumulated wire density per cell, row-major.
    pub density: Vec<f64>,
    /// The rendered topology.
    pub topology: Topology,
}

impl Floorplan {
    /// Density at canvas cell `(x, y)`.
    pub fn at(&self, x: usize, y: usize) -> f64 {
        self.density[y * self.size + x]
    }

    /// Density at the cluster center.
    pub fn center_density(&self) -> f64 {
        let c = self.size / 2;
        self.at(c, c)
    }

    /// Peak density anywhere on the canvas.
    pub fn peak_density(&self) -> f64 {
        self.density.iter().copied().fold(0.0, f64::max)
    }

    /// Coefficient of variation of the density (lower = more evenly
    /// distributed wiring).
    pub fn spread(&self) -> f64 {
        let n = self.density.len() as f64;
        let mean = self.density.iter().sum::<f64>() / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .density
            .iter()
            .map(|d| (d - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }

    /// Renders the heatmap as ASCII art (darker = denser wiring), one row
    /// per line.
    pub fn render(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let peak = self.peak_density().max(1e-12);
        let mut out = String::with_capacity(self.size * (self.size + 1));
        for y in 0..self.size {
            for x in 0..self.size {
                let level = (self.at(x, y) / peak * (SHADES.len() - 1) as f64).round() as usize;
                out.push(SHADES[level.min(SHADES.len() - 1)] as char);
                out.push(' ');
            }
            out.push('\n');
        }
        out
    }
}

/// Walks a straight line between two canvas points, adding `weight` to
/// every cell it passes (supersampled).
fn stroke(density: &mut [f64], size: usize, from: (f64, f64), to: (f64, f64), weight: f64) {
    let steps = (size * 4).max(8);
    for i in 0..=steps {
        let t = i as f64 / steps as f64;
        let x = from.0 + (to.0 - from.0) * t;
        let y = from.1 + (to.1 - from.1) * t;
        let xi = (x.round() as usize).min(size - 1);
        let yi = (y.round() as usize).min(size - 1);
        density[yi * size + xi] += weight / steps as f64;
    }
}

/// Builds the wiring-density floorplan for a configuration.
///
/// # Panics
///
/// Panics if `num_tiles` is not a perfect square (the paper's physical
/// arrangement).
pub fn floorplan(config: &ClusterConfig) -> Floorplan {
    let n = config.num_tiles;
    let edge = (n as f64).sqrt() as usize;
    assert_eq!(edge * edge, n, "tiles must form a square grid");
    let size = 2 * edge + 1;
    let mut density = vec![0.0; size * size];
    let tile_pos = |t: usize| -> (f64, f64) {
        let x = (t % edge) as f64 * 2.0 + 1.0;
        let y = (t / edge) as f64 * 2.0 + 1.0;
        (x, y)
    };
    let center = ((size / 2) as f64, (size / 2) as f64);
    match config.topology {
        Topology::Ideal => {
            // Not physically meaningful: full point-to-point wiring.
            for a in 0..n {
                for b in (a + 1)..n {
                    stroke(&mut density, size, tile_pos(a), tile_pos(b), 0.05);
                }
            }
        }
        Topology::Top1 | Topology::Top4 => {
            let ports = config.topology.remote_ports(config.cores_per_tile) as f64;
            for t in 0..n {
                // Request + response wiring to the central switch stack.
                stroke(&mut density, size, tile_pos(t), center, 2.0 * ports);
            }
        }
        Topology::TopH => {
            // Four group hubs at the quadrant centers (2×2 groups of
            // edge/?: the paper arranges 4 groups of 16 tiles as quadrants).
            let q = (size as f64) / 4.0;
            let hubs = [
                (q, q),
                (3.0 * q, q),
                (q, 3.0 * q),
                (3.0 * q, 3.0 * q),
            ];
            let group_of = |t: usize| -> usize {
                let gx = (t % edge) / (edge / 2);
                let gy = (t / edge) / (edge / 2);
                gy * 2 + gx
            };
            for t in 0..n {
                // L port to the local group hub (request + response).
                stroke(&mut density, size, tile_pos(t), hubs[group_of(t)], 2.0);
            }
            // Inter-group channels: E (horizontal), N (vertical), NE
            // (diagonal through the center), request + response each, with
            // one 16-wide channel per direction pair.
            let w = 2.0 * (config.tiles_per_group() as f64);
            stroke(&mut density, size, hubs[0], hubs[1], w); // E row 0
            stroke(&mut density, size, hubs[2], hubs[3], w); // E row 1
            stroke(&mut density, size, hubs[0], hubs[2], w); // N col 0
            stroke(&mut density, size, hubs[1], hubs[3], w); // N col 1
            stroke(&mut density, size, hubs[0], hubs[3], w); // NE diagonal
            stroke(&mut density, size, hubs[1], hubs[2], w); // NE diagonal
        }
    }
    Floorplan {
        size,
        density,
        topology: config.topology,
    }
}

/// Side-by-side textual comparison of the Fig. 9 message: how much of the
/// wiring funnels through the die center per topology.
pub fn congestion_summary(config_of: impl Fn(Topology) -> ClusterConfig) -> String {
    let mut out = String::new();
    for topo in [Topology::Top1, Topology::Top4, Topology::TopH] {
        let cfg = config_of(topo);
        let plan = floorplan(&cfg);
        let verdict = if interconnect_area(&cfg).feasible {
            "routable"
        } else {
            "INFEASIBLE"
        };
        out.push_str(&format!(
            "{topo:>5}: center density {:>7.2}, spread {:.2}, back-end {verdict}\n",
            plan.center_density(),
            plan.spread()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper(topo: Topology) -> ClusterConfig {
        ClusterConfig::paper(topo)
    }

    #[test]
    fn top4_center_is_four_times_top1() {
        let top1 = floorplan(&paper(Topology::Top1));
        let top4 = floorplan(&paper(Topology::Top4));
        let ratio = top4.center_density() / top1.center_density();
        assert!((ratio - 4.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn toph_center_is_below_top1() {
        let top1 = floorplan(&paper(Topology::Top1));
        let toph = floorplan(&paper(Topology::TopH));
        assert!(
            toph.center_density() < top1.center_density(),
            "TopH {} vs Top1 {}",
            toph.center_density(),
            top1.center_density()
        );
    }

    #[test]
    fn toph_spreads_wiring_more_evenly() {
        let top1 = floorplan(&paper(Topology::Top1));
        let toph = floorplan(&paper(Topology::TopH));
        assert!(
            toph.spread() < top1.spread(),
            "TopH spread {} vs Top1 {}",
            toph.spread(),
            top1.spread()
        );
    }

    #[test]
    fn render_has_expected_shape() {
        let plan = floorplan(&paper(Topology::TopH));
        let text = plan.render();
        assert_eq!(text.lines().count(), plan.size);
        // The canvas is 17 cells wide, two characters each.
        assert!(text.lines().all(|l| l.len() == plan.size * 2));
        // Densest cells render as '@'.
        assert!(text.contains('@'));
    }

    #[test]
    fn summary_mentions_top4_infeasibility() {
        let s = congestion_summary(paper);
        assert!(s.contains("INFEASIBLE"));
        assert!(s.contains("top4"));
    }
}
