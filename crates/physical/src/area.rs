//! Analytical area model of the MemPool cluster in GF 22FDX, calibrated
//! against §VI-B/§VI-C of the paper.
//!
//! The paper reports one physical implementation; this module encodes its
//! constants (kGE counts, utilization, macro sizes) as a roll-up so the
//! same breakdowns can be regenerated and swept over configurations. These
//! are *model* numbers, not synthesis results — see EXPERIMENTS.md.

use mempool::{ClusterConfig, Topology};

/// Gate-equivalent counts of the leaf blocks (kGE), calibrated to §III-B
/// and §VI-B.
pub mod kge {
    /// One Snitch core ("a 21 kGE … RV32IMA core").
    pub const SNITCH_CORE: f64 = 21.0;
    /// The paper's full tile (4 cores, 16 banks, I$, crossbars, ROBs).
    pub const TILE_TOTAL: f64 = 908.0;
    /// I-cache share of the tile ("23.6 %").
    pub const TILE_ICACHE_FRACTION: f64 = 0.236;
    /// SPM share of the tile ("40.2 %").
    pub const TILE_SPM_FRACTION: f64 = 0.402;
    /// One radix-4 switch of the global interconnect (estimate: 32-bit
    /// datapath, 4×4 crossbar + round-robin arbiters + elastic buffers).
    pub const RADIX4_SWITCH: f64 = 3.2;
    /// One 16×16 fully-connected crossbar port-pair slice (per master).
    pub const XBAR16_PER_PORT: f64 = 10.5;
}

/// Physical constants of the GF 22FDX implementation.
pub mod fdx22 {
    /// Tile macro edge (µm): "425 µm × 425 µm".
    pub const TILE_EDGE_UM: f64 = 425.0;
    /// Tile placement utilization: "72.8 %".
    pub const TILE_UTILIZATION: f64 = 0.728;
    /// Cluster macro edge (mm): "4.6 mm × 4.6 mm".
    pub const CLUSTER_EDGE_MM: f64 = 4.6;
    /// Fraction of cluster area covered by tiles: "55 %".
    pub const TILE_COVERAGE: f64 = 0.55;
    /// Derived silicon area per gate equivalent at tile utilization
    /// (µm²/GE).
    pub fn um2_per_ge() -> f64 {
        TILE_EDGE_UM * TILE_EDGE_UM * TILE_UTILIZATION / (kge_to_ge(super::kge::TILE_TOTAL))
    }

    fn kge_to_ge(kge: f64) -> f64 {
        kge * 1000.0
    }
}

/// Area roll-up of one tile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileArea {
    /// Total tile complexity (kGE).
    pub total_kge: f64,
    /// I-cache share (kGE).
    pub icache_kge: f64,
    /// SPM share (kGE).
    pub spm_kge: f64,
    /// Cores share (kGE).
    pub cores_kge: f64,
    /// Tile-local interconnect, ROBs and glue (kGE).
    pub interconnect_kge: f64,
    /// Macro edge (µm), assuming a square macro at the paper's utilization.
    pub edge_um: f64,
}

impl TileArea {
    /// I-cache fraction of the tile.
    pub fn icache_fraction(&self) -> f64 {
        self.icache_kge / self.total_kge
    }

    /// SPM fraction of the tile.
    pub fn spm_fraction(&self) -> f64 {
        self.spm_kge / self.total_kge
    }
}

/// Per-topology global-interconnect inventory and congestion estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectArea {
    /// Radix-4 switches in the global (inter-tile) networks, request +
    /// response.
    pub switches: usize,
    /// Fully-connected crossbar master ports in the global networks.
    pub xbar_ports: usize,
    /// Global interconnect complexity (kGE).
    pub kge: f64,
    /// Relative center congestion (Top1 ≡ 1.0): the fraction of global
    /// wires whose minimal-length route crosses the cluster center,
    /// weighted by wire count.
    pub center_congestion: f64,
    /// Whether the back-end flow closes at reasonable clock rates
    /// (§VI-C: Top4 is "physically infeasible").
    pub feasible: bool,
}

/// Full cluster area report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterArea {
    /// The tile roll-up.
    pub tile: TileArea,
    /// The global interconnect inventory.
    pub interconnect: InterconnectArea,
    /// Total cluster silicon (mm²) including the interconnect overhead.
    pub cluster_mm2: f64,
    /// Cluster macro edge (mm).
    pub edge_mm: f64,
    /// Fraction of the macro covered by tile macros.
    pub tile_coverage: f64,
}

/// Computes the tile area roll-up for a configuration (scales the paper's
/// tile with core count; bank/I-cache sizes scale their shares linearly).
pub fn tile_area(config: &ClusterConfig) -> TileArea {
    let icache_kge = kge::TILE_TOTAL * kge::TILE_ICACHE_FRACTION
        * (config.icache.size_bytes as f64 / 2048.0);
    let spm_kge = kge::TILE_TOTAL
        * kge::TILE_SPM_FRACTION
        * (config.banks_per_tile as f64 * config.rows_per_bank as f64 * 4.0 / 16384.0);
    let cores_kge = kge::SNITCH_CORE * config.cores_per_tile as f64;
    let paper_rest =
        kge::TILE_TOTAL * (1.0 - kge::TILE_ICACHE_FRACTION - kge::TILE_SPM_FRACTION)
            - 4.0 * kge::SNITCH_CORE;
    // Tile-local interconnect scales with (cores + ports) × banks.
    let ports = config.topology.remote_ports(config.cores_per_tile) as f64;
    let paper_ports = 4.0;
    let scale = ((config.cores_per_tile as f64 + ports) * config.banks_per_tile as f64)
        / ((4.0 + paper_ports) * 16.0);
    let interconnect_kge = paper_rest * scale;
    let total_kge = icache_kge + spm_kge + cores_kge + interconnect_kge;
    let area_um2 = total_kge * 1000.0 * fdx22::um2_per_ge() / fdx22::TILE_UTILIZATION;
    TileArea {
        total_kge,
        icache_kge,
        spm_kge,
        cores_kge,
        interconnect_kge,
        edge_um: area_um2.sqrt(),
    }
}

/// Computes the global interconnect inventory for a configuration.
pub fn interconnect_area(config: &ClusterConfig) -> InterconnectArea {
    let n = config.num_tiles as f64;
    let radix = config.radix as f64;
    let layers = (n.ln() / radix.ln()).round();
    let switches_per_net = (n / radix) * layers;
    let (switches, xbar_ports, center_congestion) = match config.topology {
        Topology::Ideal => (0.0, 2.0 * n * n / 16.0, f64::INFINITY),
        // Request + response networks.
        Topology::Top1 => (2.0 * switches_per_net, 0.0, 1.0),
        Topology::Top4 => (
            2.0 * switches_per_net * config.cores_per_tile as f64,
            0.0,
            config.cores_per_tile as f64,
        ),
        Topology::TopH => {
            let tpg = config.tiles_per_group() as f64;
            let group_layers = (tpg.ln() / radix.ln()).round().max(1.0);
            let bfly_switches = (tpg / radix) * group_layers;
            // 4 groups × 3 directions × (request + response) butterflies;
            // 4 groups × 2 local crossbars of tpg ports.
            let switches = 4.0 * 3.0 * 2.0 * bfly_switches;
            let ports = 4.0 * 2.0 * tpg;
            // Only the NE (diagonal) channels cross the cluster center:
            // 2 diagonal pairings of the 6 directed inter-group channels,
            // each carrying 1/4 of Top4's wire count.
            (switches, ports, 0.75)
        }
    };
    let kge = switches * kge::RADIX4_SWITCH + xbar_ports * kge::XBAR16_PER_PORT;
    InterconnectArea {
        switches: switches as usize,
        xbar_ports: xbar_ports as usize,
        kge,
        center_congestion,
        // §VI-C: Top4 is ~4× as congested as Top1, which is already at the
        // limit; the threshold sits between Top1 and Top4.
        feasible: center_congestion <= 2.0,
    }
}

/// Computes the full cluster report.
pub fn cluster_area(config: &ClusterConfig) -> ClusterArea {
    let tile = tile_area(config);
    let interconnect = interconnect_area(config);
    let tiles_mm2 = config.num_tiles as f64 * (tile.edge_um * tile.edge_um) / 1e6;
    // The paper's floorplan leaves 45 % of the macro to the global
    // interconnect, congestion relief and power grid.
    let cluster_mm2 = tiles_mm2 / fdx22::TILE_COVERAGE;
    ClusterArea {
        tile,
        interconnect,
        cluster_mm2,
        edge_mm: cluster_mm2.sqrt(),
        tile_coverage: fdx22::TILE_COVERAGE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper(topology: Topology) -> ClusterConfig {
        ClusterConfig::paper(topology)
    }

    #[test]
    fn paper_tile_matches_reported_numbers() {
        let t = tile_area(&paper(Topology::TopH));
        assert!((t.total_kge - 908.0).abs() < 1.0, "tile {} kGE", t.total_kge);
        assert!((t.icache_fraction() - 0.236).abs() < 0.005);
        assert!((t.spm_fraction() - 0.402).abs() < 0.005);
        assert!((t.edge_um - 425.0).abs() < 3.0, "edge {} um", t.edge_um);
    }

    #[test]
    fn paper_cluster_matches_reported_numbers() {
        let c = cluster_area(&paper(Topology::TopH));
        assert!((c.edge_mm - 4.6).abs() < 0.1, "edge {} mm", c.edge_mm);
        assert!((c.tile_coverage - 0.55).abs() < 0.01);
    }

    #[test]
    fn feasibility_verdicts() {
        assert!(interconnect_area(&paper(Topology::Top1)).feasible);
        assert!(!interconnect_area(&paper(Topology::Top4)).feasible);
        assert!(interconnect_area(&paper(Topology::TopH)).feasible);
        assert!(!interconnect_area(&paper(Topology::Ideal)).feasible);
    }

    #[test]
    fn top4_congestion_is_four_times_top1() {
        let top1 = interconnect_area(&paper(Topology::Top1));
        let top4 = interconnect_area(&paper(Topology::Top4));
        assert!((top4.center_congestion / top1.center_congestion - 4.0).abs() < 1e-9);
    }

    #[test]
    fn toph_distributes_wiring() {
        let top4 = interconnect_area(&paper(Topology::TopH));
        assert!(top4.center_congestion < 1.0);
    }

    #[test]
    fn smaller_icache_shrinks_tile() {
        let mut cfg = paper(Topology::TopH);
        cfg.icache.size_bytes = 1024;
        let small = tile_area(&cfg);
        let full = tile_area(&paper(Topology::TopH));
        assert!(small.total_kge < full.total_kge);
        assert!(small.icache_fraction() < full.icache_fraction());
    }
}
