//! Power-over-time: turns the simulator's windowed activity series into
//! the `mempool-power-v1` document.
//!
//! The cycle-accurate simulator (with profiling enabled) latches integer
//! activity deltas every `power_window` cycles — per-tile instruction and
//! access mixes plus the cluster-wide local/remote split
//! ([`mempool::PowerWindow`]). This module prices each window with the
//! calibrated per-event energies of [`crate::energy::pj`] and emits a
//! deterministic JSON time series: per-tile milliwatts, cluster watts, and
//! the compute-vs-interconnect split per window.
//!
//! Booking follows Fig. 10 and §VI-D: cores, I-caches, SPM banks and tile
//! idle power are **compute** (booked at the tile that did the work — SPM
//! at the serving tile); the tile-local crossbar share of every access and
//! the global-interconnect share of remote accesses are **interconnect**,
//! booked at cluster level (the per-access issuing tile is not tracked in
//! the window series).
//!
//! All inputs are integers and every arithmetic step is deterministic IEEE
//! double math with fixed-precision formatting, so identical simulations
//! export byte-identical documents.

use crate::energy::pj;
use mempool::PowerWindow;
use std::fmt::Write as _;

/// Schema tag stamped into every power-timeline export.
pub const POWER_SCHEMA: &str = "mempool-power-v1";

/// One priced window of the power timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowPower {
    /// First cycle of the window.
    pub start: u64,
    /// One past the last cycle of the window.
    pub end: u64,
    /// Per-tile power in milliwatts (compute energy booked at the tile).
    pub tiles_mw: Vec<f64>,
    /// Compute power (cores + I-caches + SPM + tile idle), watts.
    pub compute_w: f64,
    /// Interconnect power (tile crossbar + global net shares), watts.
    pub interconnect_w: f64,
}

impl WindowPower {
    /// Total cluster power over the window, watts.
    pub fn cluster_w(&self) -> f64 {
        self.compute_w + self.interconnect_w
    }
}

/// Prices one activity window at `freq_mhz`.
///
/// `cores_per_tile` and `banks_per_tile` size the idle/leakage terms;
/// window length comes from the window itself.
pub fn window_power(
    w: &PowerWindow,
    cores_per_tile: usize,
    banks_per_tile: usize,
    freq_mhz: f64,
) -> WindowPower {
    let cycles = (w.end - w.start).max(1) as f64;
    // pJ per cycle at f MHz -> watts: pJ/cyc * cyc/s * 1e-12 = pJ/cyc * f*1e6 * 1e-12.
    let pj_per_cycle_to_w = freq_mhz * 1e-6;
    let mut compute_pj = 0.0;
    let tiles_mw = w
        .tiles
        .iter()
        .map(|t| {
            let alu = t.instret.saturating_sub(t.muls + t.divs + t.memory_ops) as f64;
            let tile_pj = alu * pj::ADD
                + t.muls as f64 * pj::MUL
                + t.divs as f64 * pj::DIV
                + t.memory_ops as f64 * pj::CORE_MEM
                + cores_per_tile as f64 * cycles * pj::CORE_IDLE
                + t.icache_fetches as f64 * pj::ICACHE_FETCH
                + t.icache_refills as f64 * pj::ICACHE_REFILL
                + t.bank_accesses as f64 * pj::SPM_ACCESS
                + banks_per_tile as f64 * cycles * pj::SPM_IDLE
                + cycles * pj::TILE_IDLE;
            compute_pj += tile_pj;
            tile_pj / cycles * pj_per_cycle_to_w * 1e3
        })
        .collect();
    let interconnect_pj = w.local_requests as f64 * pj::NET_TILE_LOCAL
        + w.remote_requests as f64 * (pj::NET_TILE_REMOTE + pj::NET_GLOBAL_REMOTE);
    WindowPower {
        start: w.start,
        end: w.end,
        tiles_mw,
        compute_w: compute_pj / cycles * pj_per_cycle_to_w,
        interconnect_w: interconnect_pj / cycles * pj_per_cycle_to_w,
    }
}

/// Prices a whole window series.
pub fn power_timeline(
    windows: &[PowerWindow],
    cores_per_tile: usize,
    banks_per_tile: usize,
    freq_mhz: f64,
) -> Vec<WindowPower> {
    windows
        .iter()
        .map(|w| window_power(w, cores_per_tile, banks_per_tile, freq_mhz))
        .collect()
}

/// Renders a window series as the `mempool-power-v1` JSON document:
///
/// ```json
/// {
///   "schema": "mempool-power-v1",
///   "freq_mhz": 500.000,
///   "num_tiles": 64,
///   "windows": [
///     {"start": 0, "end": 1024, "cluster_w": 1.512, "compute_w": 1.303,
///      "interconnect_w": 0.209, "tiles_mw": [20.4, ...]},
///     ...
///   ]
/// }
/// ```
///
/// Power values are fixed to three decimals, so identical simulations
/// export byte-identical documents.
pub fn power_timeline_json(
    windows: &[PowerWindow],
    cores_per_tile: usize,
    banks_per_tile: usize,
    freq_mhz: f64,
) -> String {
    let num_tiles = windows.first().map_or(0, |w| w.tiles.len());
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{POWER_SCHEMA}\",");
    let _ = writeln!(out, "  \"freq_mhz\": {freq_mhz:.3},");
    let _ = writeln!(out, "  \"num_tiles\": {num_tiles},");
    out.push_str("  \"windows\": [\n");
    for (i, w) in windows.iter().enumerate() {
        let p = window_power(w, cores_per_tile, banks_per_tile, freq_mhz);
        let _ = write!(
            out,
            "    {{\"start\": {}, \"end\": {}, \"cluster_w\": {:.3}, \"compute_w\": {:.3}, \
             \"interconnect_w\": {:.3}, \"tiles_mw\": [",
            p.start,
            p.end,
            p.cluster_w(),
            p.compute_w,
            p.interconnect_w
        );
        for (j, mw) in p.tiles_mw.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{mw:.3}");
        }
        out.push_str("]}");
        out.push_str(if i + 1 < windows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool::TileActivity;

    /// A matmul-like paper-configuration window: the same per-core rates as
    /// `energy::tests::matmul_like`, folded into 64 equal tiles over 1024
    /// cycles.
    fn busy_window() -> PowerWindow {
        let cycles = 1024u64;
        let per_tile_cores = 4.0;
        let t = TileActivity {
            instret: (0.645 * per_tile_cores * cycles as f64) as u64,
            muls: (0.118 * per_tile_cores * cycles as f64) as u64,
            divs: 0,
            memory_ops: (0.24 * per_tile_cores * cycles as f64) as u64,
            icache_fetches: (0.9 * per_tile_cores * cycles as f64) as u64,
            icache_refills: 8,
            bank_accesses: (0.24 * per_tile_cores * cycles as f64) as u64,
        };
        PowerWindow {
            start: 0,
            end: cycles,
            tiles: vec![t; 64],
            local_requests: (0.012 * 256.0 * cycles as f64) as u64,
            remote_requests: (0.228 * 256.0 * cycles as f64) as u64,
        }
    }

    fn idle_window() -> PowerWindow {
        PowerWindow {
            start: 1024,
            end: 2048,
            tiles: vec![TileActivity::default(); 64],
            local_requests: 0,
            remote_requests: 0,
        }
    }

    #[test]
    fn busy_window_prices_near_paper_values() {
        let p = window_power(&busy_window(), 4, 16, 500.0);
        let tile0 = p.tiles_mw[0];
        assert!((tile0 - 20.9).abs() < 3.0, "tile power {tile0} mW");
        let cluster = p.cluster_w();
        assert!((cluster - 1.55).abs() < 0.3, "cluster power {cluster} W");
        assert!(p.compute_w > p.interconnect_w, "{p:?}");
        assert!(p.interconnect_w > 0.1 * cluster, "{p:?}");
    }

    #[test]
    fn idle_window_draws_much_less() {
        let busy = window_power(&busy_window(), 4, 16, 500.0);
        let idle = window_power(&idle_window(), 4, 16, 500.0);
        assert!(idle.cluster_w() < 0.35 * busy.cluster_w());
        assert_eq!(idle.interconnect_w, 0.0);
    }

    #[test]
    fn json_is_stable_and_balanced() {
        let windows = [busy_window(), idle_window()];
        let a = power_timeline_json(&windows, 4, 16, 500.0);
        let b = power_timeline_json(&windows, 4, 16, 500.0);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"mempool-power-v1\""));
        assert!(a.contains("\"start\": 0, \"end\": 1024"));
        assert!(a.contains("\"compute_w\""));
        assert!(a.contains("\"interconnect_w\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        assert_eq!(a.matches("\"start\"").count(), 2);
    }

    #[test]
    fn empty_series_is_still_a_valid_document() {
        let json = power_timeline_json(&[], 4, 16, 500.0);
        assert!(json.contains("\"num_tiles\": 0"));
        assert!(json.contains("\"windows\": [\n  ]"));
    }

    #[test]
    fn window_energy_matches_whole_run_energy_model() {
        // One window covering a whole uniform run must price the same total
        // power as the aggregate energy model on the same activity.
        let w = busy_window();
        let p = window_power(&w, 4, 16, 500.0);
        let t = &w.tiles[0];
        let a = crate::energy::Activity {
            cycles: w.end - w.start,
            num_tiles: 64,
            num_cores: 256,
            banks_per_tile: 16,
            instructions: t.instret * 64,
            muls: t.muls * 64,
            divs: t.divs * 64,
            memory_ops: t.memory_ops * 64,
            local_accesses: w.local_requests,
            remote_accesses: w.remote_requests,
            ifetches: t.icache_fetches * 64,
            refills: t.icache_refills * 64,
        };
        let whole = crate::energy::cluster_power_w(&a, 500.0);
        // The window model omits per-access SPM energy double-booking
        // differences: SPM access energy is booked from bank_accesses
        // (served) instead of local+remote (issued). With bank_accesses ==
        // memory_ops per tile here the models agree closely.
        let diff = (p.cluster_w() - whole).abs();
        assert!(diff < 0.05 * whole, "window {} vs whole {whole}", p.cluster_w());
    }
}
