//! # mempool-rng
//!
//! A tiny, vendored pseudo-random number generator exposing the subset of
//! the `rand 0.8` surface the workspace uses (`StdRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range`, `RngCore::next_u32`). The whole suite must
//! build and test without network access, so external registry crates are
//! off the table; everything random in the simulator is seeded test input
//! or synthetic traffic, where reproducibility matters and cryptographic
//! quality does not.
//!
//! [`StdRng`] is splitmix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit
//! counter stream through an avalanching finalizer. It passes through
//! practical statistical batteries at the scale used here and — unlike
//! `rand`'s `StdRng` — its output stream is *guaranteed* stable across
//! releases, which the determinism contracts in this repo rely on.
//!
//! # Examples
//!
//! ```
//! use mempool_rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let die: i32 = rng.gen_range(1..7);
//! assert!((1..7).contains(&die));
//! let p: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&p));
//! // Same seed, same stream.
//! let mut again = StdRng::seed_from_u64(42);
//! assert_eq!(again.gen_range(1..7), die);
//! ```

#![warn(missing_docs)]

use core::ops::Range;

/// The raw 32/64-bit generator interface (the `rand::RngCore` subset).
pub trait RngCore {
    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the `rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits with
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types [`Rng::gen_range`] can draw over a half-open `lo..hi` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; the caller guarantees `lo < hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Draws a u64 below `span` by widening multiply — avoids modulo bias well
/// beyond the span sizes used anywhere in this workspace.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + below(rng, (hi - lo) as u64) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level sampling helpers (the `rand::Rng` subset), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` from the generator's raw bits.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range on an empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Splitmix64: a counter stepped by the golden-ratio increment, finalized
/// with an avalanching mix. One multiply-xor-shift pipeline per draw, full
/// 2^64 period, and every seed gives an independent-looking stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

impl StdRng {
    /// The raw generator state (checkpointing). Feeding it back through
    /// [`SeedableRng::seed_from_u64`] reproduces the exact stream position,
    /// because seeding stores the value verbatim.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }
}

/// The splitmix64 finalizer: bijective, avalanching mix of a 64-bit word.
#[inline]
#[must_use]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        splitmix64_mix(self.state)
    }
}

/// A transparent arithmetic-progression generator for tests that want fully
/// predictable "random" data (the `rand::rngs::mock::StepRng` drop-in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepRng {
    value: u64,
    step: u64,
}

impl StepRng {
    /// Yields `initial`, `initial + step`, `initial + 2 * step`, …
    #[must_use]
    pub fn new(initial: u64, step: u64) -> Self {
        StepRng {
            value: initial,
            step,
        }
    }
}

impl RngCore for StepRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.value;
        self.value = self.value.wrapping_add(self.step);
        out
    }
}

/// Namespace aliases mirroring `rand`'s module layout, so call sites keep
/// their `rngs::StdRng` / `rngs::mock::StepRng` paths.
pub mod rngs {
    pub use super::StdRng;

    /// Mock generators with fully predictable output.
    pub mod mock {
        pub use super::super::StepRng;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_splitmix64_vector() {
        // Reference values for seed 1234567 from the canonical splitmix64.
        let mut rng = StdRng::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 0x599e_d017_fb08_fc85);
        assert_eq!(rng.next_u64(), 0x2c73_f084_5854_0fa5);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let v: i32 = rng.gen_range(-128..128);
            assert!((-128..128).contains(&v));
            let u: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&u));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn step_rng_is_arithmetic() {
        let mut rng = StepRng::new(10, 3);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 13);
        assert_eq!(rng.next_u32(), 16);
    }
}
