//! Cross-crate integration tests: assembler → Snitch ISS → cluster →
//! interconnect → SPM, exercised through the public APIs only.

use mempool::{Cluster, ClusterConfig, Topology};
use mempool_kernels::{emit_barrier, emit_epilogue, emit_prologue, Geometry};
use mempool_riscv::{assemble, Reg};

fn tiny_top1() -> ClusterConfig {
    // 4 tiles × 4 cores: the smallest legal Top1 cluster.
    ClusterConfig {
        num_tiles: 4,
        ..ClusterConfig::small(Topology::Top1)
    }
}

#[test]
fn amo_reduction_across_all_topologies() {
    // Every core adds its hartid to a shared accumulator; the result is
    // the closed-form sum regardless of topology and scrambling.
    for topo in Topology::all() {
        for scrambled in [true, false] {
            let mut config = ClusterConfig::small(topo);
            if !scrambled {
                config.seq_region_bytes = None;
            }
            let geom = Geometry::from_config(&config, 4096);
            let acc = geom.data_base();
            let source = format!(
                "{prologue}\tli t0, {acc}\n\tamoadd.w zero, s0, (t0)\n{epilogue}",
                prologue = emit_prologue(&geom),
                epilogue = emit_epilogue(),
            );
            let program = assemble(&source).unwrap();
            let mut cluster = Cluster::snitch(config).unwrap();
            cluster.load_program(&program).unwrap();
            cluster.run(1_000_000).unwrap();
            let n = geom.num_cores() as u32;
            assert_eq!(
                cluster.read_word(acc),
                Some(n * (n - 1) / 2),
                "{topo} scrambled={scrambled}"
            );
        }
    }
}

#[test]
fn lr_sc_spinlock_mutual_exclusion() {
    // A classic LR/SC spinlock protecting a *non-atomic* increment: if
    // mutual exclusion or the release fence ever breaks, increments get
    // lost and the final count is wrong.
    let config = tiny_top1();
    let geom = Geometry::from_config(&config, 4096);
    let lock = geom.data_base();
    let counter = geom.data_base() + 4;
    let rounds = 5;
    let source = format!(
        "{prologue}\
         \tli   s3, {rounds}\n\
         \tli   s4, {lock}\n\
         \tli   s5, {counter}\n\
         again:\n\
         acquire:\n\
         \tlr.w t0, (s4)\n\
         \tbnez t0, acquire\n\
         \tli   t1, 1\n\
         \tsc.w t0, t1, (s4)\n\
         \tbnez t0, acquire\n\
         \t# critical section: non-atomic read-modify-write\n\
         \tlw   t2, (s5)\n\
         \taddi t2, t2, 1\n\
         \tsw   t2, (s5)\n\
         \tfence                      # publish before release\n\
         \tsw   zero, (s4)\n\
         \taddi s3, s3, -1\n\
         \tbnez s3, again\n\
         {epilogue}",
        prologue = emit_prologue(&geom),
        epilogue = emit_epilogue(),
    );
    let program = assemble(&source).unwrap();
    let mut cluster = Cluster::snitch(config).unwrap();
    cluster.load_program(&program).unwrap();
    cluster.run(10_000_000).expect("no livelock");
    assert_eq!(
        cluster.read_word(counter),
        Some(geom.num_cores() as u32 * rounds)
    );
    assert_eq!(cluster.read_word(lock), Some(0), "lock released");
}

#[test]
fn barrier_pipeline_two_phases() {
    // Phase 1: core i writes slot i. Barrier. Phase 2: core i sums all
    // slots — every core must observe the complete phase-1 state.
    let config = ClusterConfig::small(Topology::TopH);
    let geom = Geometry::from_config(&config, 4096);
    let table = geom.data_base();
    let n = geom.num_cores();
    let source = format!(
        "{prologue}\
         \tli   t0, {table}\n\
         \tslli t1, s0, 2\n\
         \tadd  t0, t0, t1\n\
         \taddi t2, s0, 1\n\
         \tsw   t2, (t0)\n\
         \tjal  ra, __barrier\n\
         \tli   t0, {table}\n\
         \tli   t3, {n}\n\
         \tli   a0, 0\n\
         sum:\n\
         \tlw   t4, (t0)\n\
         \tadd  a0, a0, t4\n\
         \taddi t0, t0, 4\n\
         \taddi t3, t3, -1\n\
         \tbnez t3, sum\n\
         {epilogue}\
         {barrier}",
        prologue = emit_prologue(&geom),
        epilogue = emit_epilogue(),
        barrier = emit_barrier(&geom),
    );
    let program = assemble(&source).unwrap();
    let mut cluster = Cluster::snitch(config).unwrap();
    cluster.load_program(&program).unwrap();
    cluster.run(20_000_000).unwrap();
    let expect = (n as u32) * (n as u32 + 1) / 2;
    for (i, core) in cluster.cores().iter().enumerate() {
        assert_eq!(core.reg(Reg::A0), expect, "core {i} saw a partial phase 1");
    }
}

#[test]
fn sub_word_accesses_through_the_network() {
    // Byte and halfword stores/loads to a remote tile exercise the strobe
    // path end to end.
    let config = ClusterConfig::small(Topology::TopH);
    let geom = Geometry::from_config(&config, 4096);
    let base = geom.data_base();
    let source = format!(
        "csrr t0, mhartid\n\
         bnez t0, done\n\
         li   t1, {base}\n\
         li   t2, 0x11223344\n\
         sw   t2, 0(t1)\n\
         li   t3, 0xaa\n\
         sb   t3, 1(t1)\n\
         li   t4, 0xbbcc\n\
         sh   t4, 4(t1)\n\
         fence\n\
         lw   a0, 0(t1)\n\
         lbu  a1, 1(t1)\n\
         lhu  a2, 4(t1)\n\
         lb   a3, 3(t1)\n\
         done: ecall\n"
    );
    let program = assemble(&source).unwrap();
    let mut cluster = Cluster::snitch(config).unwrap();
    cluster.load_program(&program).unwrap();
    cluster.run(1_000_000).unwrap();
    let core = &cluster.cores()[0];
    assert_eq!(core.reg(Reg::A0), 0x1122_aa44);
    assert_eq!(core.reg(Reg::A1), 0xaa);
    assert_eq!(core.reg(Reg::A2), 0xbbcc);
    assert_eq!(core.reg(Reg::A3), 0x11);
    assert_eq!(cluster.read_word(base), Some(0x1122_aa44));
    assert_eq!(cluster.read_word(base + 4), Some(0xbbcc));
}

#[test]
fn memory_helpers_round_trip_through_scrambler() {
    let config = ClusterConfig::small(Topology::TopH);
    let mut cluster = Cluster::snitch(config).unwrap();
    let words: Vec<u32> = (0..256u32).map(|i| i.wrapping_mul(2654435761)).collect();
    // Spans sequential and interleaved regions.
    for base in [0u32, 4096 - 128, 65536] {
        cluster.write_words(base, &words).expect("range in L1");
        assert_eq!(
            cluster.read_words(base, words.len()).expect("range in L1"),
            words,
            "base {base:#x}"
        );
    }
    assert_eq!(cluster.read_word(0xffff_fffc), None);
    // Out-of-range bulk access is a recoverable bus error, not a panic.
    let err = cluster.write_words(0xffff_fff0, &[1, 2, 3, 4, 5]).unwrap_err();
    assert_eq!(err.addr, 0xffff_fff0);
    assert!(cluster.read_words(0xffff_fff0, 2).is_err());
    assert!(cluster.stats().memory_faults >= 2);
}

#[test]
fn run_timeout_is_reported() {
    let config = tiny_top1();
    let program = assemble("spin: j spin\n").unwrap();
    let mut cluster = Cluster::snitch(config).unwrap();
    cluster.load_program(&program).unwrap();
    let err = cluster.run(1_000).unwrap_err();
    let mempool::SimError::Timeout(timeout) = err else {
        panic!("expected a timeout, got {err}");
    };
    assert_eq!(timeout.budget(), 1_000);
    assert!(timeout.to_string().contains("1000 cycles"));
}

#[test]
fn divider_and_mul_pipeline_in_parallel_program() {
    // Mixed-latency arithmetic on all cores; spot-checked against Rust.
    let config = ClusterConfig::small(Topology::Top4);
    let source = "csrr t0, mhartid\n\
                  addi t1, t0, 13\n\
                  mul  t2, t1, t1\n\
                  li   t3, 7\n\
                  divu a0, t2, t3\n\
                  remu a1, t2, t3\n\
                  ecall\n";
    let program = assemble(source).unwrap();
    let mut cluster = Cluster::snitch(config).unwrap();
    cluster.load_program(&program).unwrap();
    cluster.run(1_000_000).unwrap();
    for (i, core) in cluster.cores().iter().enumerate() {
        let sq = ((i as u32) + 13).pow(2);
        assert_eq!(core.reg(Reg::A0), sq / 7, "core {i}");
        assert_eq!(core.reg(Reg::A1), sq % 7, "core {i}");
    }
}

#[test]
fn out_of_range_access_faults_core_not_simulator() {
    // A guest store beyond L1 must kill only the offending core.
    let config = ClusterConfig::small(Topology::TopH);
    let source = "csrr t0, mhartid\n\
                  bnez t0, ok\n\
                  li   t1, 0x7fffff00\n\
                  sw   t1, (t1)\n\
                  ok: ecall\n";
    let program = assemble(source).unwrap();
    let mut cluster = Cluster::snitch(config).unwrap();
    cluster.load_program(&program).unwrap();
    cluster.run(1_000_000).unwrap();
    assert_eq!(cluster.stats().memory_faults, 1);
    assert!(cluster.cores()[0].faulted());
    assert!(!cluster.cores()[1].faulted());
}

#[test]
fn reset_chains_program_phases_over_shared_memory() {
    // Phase 1: every core writes hartid+1 to its slot. Reset (memory
    // survives). Phase 2: every core doubles its slot. The combination only
    // works if reset preserved L1 and restarted the cores.
    let config = ClusterConfig::small(Topology::TopH);
    let geom = Geometry::from_config(&config, 4096);
    let table = geom.data_base();

    let phase1 = assemble(&format!(
        "csrr t0, mhartid\nslli t1, t0, 2\nli t2, {table}\nadd t1, t1, t2\n\
         addi t3, t0, 1\nsw t3, (t1)\nfence\necall\n"
    ))
    .unwrap();
    let phase2 = assemble(&format!(
        "csrr t0, mhartid\nslli t1, t0, 2\nli t2, {table}\nadd t1, t1, t2\n\
         lw t3, (t1)\nslli t3, t3, 1\nsw t3, (t1)\nfence\necall\n"
    ))
    .unwrap();

    let mut cluster = Cluster::snitch(config).unwrap();
    cluster.load_program(&phase1).unwrap();
    cluster.run(1_000_000).unwrap();
    cluster.reset();
    assert_eq!(cluster.stats().cycles, 0, "stats restarted");
    cluster.load_program(&phase2).unwrap();
    cluster.run(1_000_000).unwrap();
    for i in 0..geom.num_cores() as u32 {
        assert_eq!(cluster.read_word(table + 4 * i), Some(2 * (i + 1)));
    }
}
