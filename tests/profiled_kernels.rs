//! End-to-end profiler contract on a real kernel: a profiled matmul must
//! still compute the right product, attribute the bulk of its cycles to
//! the compute region, balance its stall attribution against the stat
//! counters, and price into a plausible power timeline.

use mempool::{ClusterConfig, ProfileConfig, SimSession, Topology};
use mempool_kernels::{build_program, Geometry, Kernel, Matmul};
use mempool_physical::power_timeline;
use mempool_snitch::profile::{REGION_COMPUTE, REGION_SLOTS};

const SEED: u64 = 42;

fn profiled_matmul() -> (SimSession<mempool_snitch::SnitchCore>, ClusterConfig) {
    let config = ClusterConfig::small(Topology::TopH);
    let geom = Geometry::from_config(&config, 4096);
    let kernel = Matmul::new(geom, 16).expect("valid kernel");
    let program = build_program(&kernel, &config).expect("assembles");
    let mut session = SimSession::builder(config)
        .profile(ProfileConfig::with_power_window(512))
        .build_snitch()
        .expect("valid config");
    session.load_program(&program).expect("loads");
    kernel.init(session.cluster_mut(), SEED);
    session.run(10_000_000).expect("finishes");
    kernel.check(session.cluster(), SEED).expect("correct product");
    (session, config)
}

#[test]
fn matmul_compute_region_dominates_and_attribution_balances() {
    let (session, _) = profiled_matmul();
    let cluster = session.cluster();

    let regions = cluster.region_profile().expect("profiling enabled");
    let attributed: u64 = regions.iter().map(|r| r.cycles()).sum();
    let compute = &regions[REGION_COMPUTE as usize];
    assert!(
        compute.cycles() * 2 > attributed,
        "compute region holds {} of {} attributed cycles — expected the \
         majority for matmul",
        compute.cycles(),
        attributed
    );

    // Region-aggregated stall cycles must sum to exactly the stat-counter
    // stalls, and retirements to instret, over all cores.
    let totals = cluster.core_stats_total();
    let retired: u64 = regions.iter().map(|r| r.retired).sum();
    let stalled: u64 = regions.iter().map(|r| r.stall_cycles()).sum();
    assert_eq!(retired, totals.instret, "region retirements != instret");
    assert_eq!(
        stalled,
        totals.total_stalls(),
        "region stall attribution != stat-counter stalls"
    );
    assert_eq!(regions.len(), REGION_SLOTS);
}

#[test]
fn matmul_folded_stacks_cover_every_attributed_cycle() {
    let (session, _) = profiled_matmul();
    let folded = session.profile_folded().expect("profiling enabled");
    assert!(!folded.is_empty());

    // Folded-stack sample counts sum to exactly the attributed cycles:
    // nothing is lost between the per-core tables and the export.
    let exported: u64 = folded
        .lines()
        .map(|l| {
            l.rsplit_once(' ')
                .expect("`frames count` shape")
                .1
                .parse::<u64>()
                .expect("numeric sample count")
        })
        .sum();
    let totals = session.cluster().core_stats_total();
    assert_eq!(exported, totals.instret + totals.total_stalls());
    assert!(folded.lines().all(|l| l.starts_with("tile")));
    assert!(folded.contains(";compute;"), "compute frames missing");
}

#[test]
fn matmul_power_timeline_is_plausible() {
    let (session, config) = profiled_matmul();
    let windows = session.power_windows().expect("profiling enabled");
    assert!(windows.len() >= 2, "run too short for a timeline");

    let priced = power_timeline(&windows, config.cores_per_tile, config.banks_per_tile, 500.0);
    for (w, p) in windows.iter().zip(&priced) {
        assert!(p.cluster_w() > 0.0, "window {}..{} prices to zero", w.start, w.end);
        assert!(
            p.compute_w > p.interconnect_w,
            "window {}..{}: interconnect {} W above compute {} W",
            w.start,
            w.end,
            p.interconnect_w,
            p.compute_w
        );
        assert_eq!(p.tiles_mw.len(), config.num_tiles);
    }
    // The shared-interleaved matmul keeps the interconnect busy: its power
    // share must be visible (not rounding noise) in the busiest window.
    let busiest = priced
        .iter()
        .max_by(|a, b| a.cluster_w().total_cmp(&b.cluster_w()))
        .expect("at least one window");
    assert!(
        busiest.interconnect_w > 0.02 * busiest.cluster_w(),
        "no visible interconnect power in the busiest window: {busiest:?}"
    );
}
