//! End-to-end chaos coverage for the `mempool-serve` daemon: a SIGKILLed
//! job-worker costs only a retry-from-checkpoint, a SIGTERMed daemon
//! checkpoint-parks every in-flight job and a restart with the same state
//! dir resumes them to byte-identical results, an overloaded queue and a
//! zero-quota tenant get typed rejections, and corrupt journal lines are
//! skipped, counted, and surfaced in the health report.

#![cfg(unix)]

use mempool_serve::{BenchSpec, CampaignSpec, ClientError, JobSpec, RunSpec, ServeClient};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_mempool-serve");

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mempool-serve-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn daemon(socket: &Path, state: &Path, extra: &[&str]) -> Child {
    let mut cmd = Command::new(BIN);
    cmd.arg("--socket").arg(socket);
    cmd.arg("--state-dir").arg(state);
    cmd.args(extra);
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    cmd.spawn().expect("daemon spawns")
}

/// Polls `health` until the daemon answers (it binds the socket during
/// startup).
fn connect(socket: &Path) -> ServeClient {
    let client = ServeClient::connect(socket);
    let start = Instant::now();
    loop {
        if client.health().is_ok() {
            return client;
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "daemon did not come up on {}",
            socket.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A run job slow enough (debug build) to be caught mid-flight, with
/// checkpoints frequent enough that a retry loses little progress.
fn run_spec() -> JobSpec {
    JobSpec::Run(RunSpec {
        config_spec: "topology=top1,small=true,scramble=true".to_owned(),
        program: "addi t0, zero, 0\nlui t1, 4\nloop:\naddi t0, t0, 1\nbne t0, t1, loop\necall\n"
            .to_owned(),
        max_cycles: 2_000_000,
        checkpoint_every: 1024,
        metrics: false,
    })
}

/// A seeded fault campaign long enough to survive a worker hunt.
fn campaign_spec() -> JobSpec {
    JobSpec::Campaign(CampaignSpec {
        config_spec: "topology=top1,small=true,scramble=true".to_owned(),
        faults: "bank_fail=1,link_drop=0.001".to_owned(),
        trials: 4,
        load: 0.05,
        pattern: "uniform".to_owned(),
        warmup: 200,
        measure: 5000,
        drain: 10_000,
        seed: 1,
        checkpoint_every: 256,
        cycle_budget: None,
    })
}

/// Waits a job to its terminal state and returns the `done` event fields.
fn wait_done(client: &ServeClient, job: u64) -> BTreeMap<String, String> {
    client
        .wait(job, &mut |_| {})
        .unwrap_or_else(|e| panic!("waiting job {job}: {e}"))
}

fn wait_exit(child: &mut Child, what: &str) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("wait works") {
            return status;
        }
        assert!(
            start.elapsed() < Duration::from_secs(120),
            "{what} did not exit in time"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn signal(pid: u32, sig: &str) {
    let _ = Command::new("kill").args([sig, &pid.to_string()]).status();
}

/// Finds a live `job-worker` child of `parent` by walking `/proc`.
fn find_worker(parent: u32) -> Option<u32> {
    for entry in std::fs::read_dir("/proc").ok()? {
        let entry = entry.ok()?;
        let Ok(pid) = entry.file_name().to_string_lossy().parse::<u32>() else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        let after = match stat.rfind(')') {
            Some(i) => &stat[i + 1..],
            None => continue,
        };
        let ppid: u32 = match after.split_whitespace().nth(1).and_then(|s| s.parse().ok()) {
            Some(p) => p,
            None => continue,
        };
        if ppid != parent {
            continue;
        }
        let Ok(cmdline) = std::fs::read(format!("/proc/{pid}/cmdline")) else {
            continue;
        };
        if cmdline.split(|&b| b == 0).any(|arg| arg == b"job-worker") {
            return Some(pid);
        }
    }
    None
}

/// The uninterrupted reference: both jobs on a clean daemon; returns
/// their terminal result payloads.
fn reference(dir: &Path) -> (String, String) {
    let socket = dir.join("ref.sock");
    let mut child = daemon(&socket, &dir.join("ref-state"), &["--workers", "2"]);
    let client = connect(&socket);
    let campaign = client
        .submit("chaos", 0, None, &campaign_spec())
        .expect("reference campaign admitted");
    let run = client
        .submit("chaos", 0, None, &run_spec())
        .expect("reference run admitted");
    let campaign_done = wait_done(&client, campaign);
    let run_done = wait_done(&client, run);
    assert_eq!(campaign_done.get("status").unwrap(), "completed");
    assert_eq!(run_done.get("status").unwrap(), "completed");
    client.shutdown().expect("reference drain");
    assert!(wait_exit(&mut child, "reference daemon").success());
    (
        campaign_done.get("result").expect("campaign result").clone(),
        run_done.get("result").expect("run result").clone(),
    )
}

#[test]
fn sigkilled_worker_and_drained_daemon_resume_bit_identically() {
    let dir = scratch("chaos");
    let (ref_campaign, ref_run) = reference(&dir);
    assert!(
        ref_campaign.contains("\"outcome\":\"completed\""),
        "reference campaign payload: {ref_campaign}"
    );
    assert!(
        ref_run.contains("state_digest"),
        "reference run payload: {ref_run}"
    );

    // Chaos pass: same jobs, but the first worker we can catch is
    // SIGKILLed mid-job and the daemon itself is SIGTERMed while both
    // jobs are still in flight.
    let socket = dir.join("chaos.sock");
    let state = dir.join("chaos-state");
    let mut child = daemon(
        &socket,
        &state,
        &["--workers", "2", "--backoff-ms", "0", "--max-attempts", "4"],
    );
    let client = connect(&socket);
    let campaign = client
        .submit("chaos", 0, None, &campaign_spec())
        .expect("chaos campaign admitted");
    let run = client
        .submit("chaos", 0, None, &run_spec())
        .expect("chaos run admitted");

    let hunt = Instant::now();
    let mut killed = false;
    while hunt.elapsed() < Duration::from_secs(30) {
        assert!(
            child.try_wait().expect("wait works").is_none(),
            "daemon died during the worker hunt"
        );
        if let Some(worker) = find_worker(child.id()) {
            signal(worker, "-KILL");
            killed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(killed, "never caught a job-worker to SIGKILL");

    // Give the daemon a beat to observe the kill and respawn, then drain
    // it mid-flight: SIGTERM parks both jobs.
    std::thread::sleep(Duration::from_millis(150));
    signal(child.id(), "-TERM");
    assert!(
        wait_exit(&mut child, "chaos daemon").success(),
        "drain must exit cleanly"
    );

    // A restarted daemon replays the journal and resumes both jobs from
    // their checkpoints to byte-identical results.
    let mut child = daemon(&socket, &state, &["--workers", "2", "--backoff-ms", "0"]);
    let client = connect(&socket);
    let campaign_done = wait_done(&client, campaign);
    let run_done = wait_done(&client, run);
    assert_eq!(
        campaign_done.get("status").unwrap(),
        "completed",
        "campaign after chaos: {campaign_done:?}"
    );
    assert_eq!(
        run_done.get("status").unwrap(),
        "completed",
        "run after chaos: {run_done:?}"
    );
    assert_eq!(
        campaign_done.get("result").unwrap(),
        &ref_campaign,
        "campaign result must be bit-identical to the uninterrupted reference"
    );
    assert_eq!(
        run_done.get("result").unwrap(),
        &ref_run,
        "run result must be bit-identical to the uninterrupted reference"
    );
    client.shutdown().expect("final drain");
    assert!(wait_exit(&mut child, "restarted daemon").success());
}

#[test]
fn overload_and_zero_quota_are_rejected_with_typed_errors() {
    let dir = scratch("overload");
    let socket = dir.join("serve.sock");
    // No worker slots: everything queues, so the depth bound is exact.
    let mut child = daemon(
        &socket,
        &dir.join("state"),
        &["--workers", "0", "--queue-depth", "1", "--quota", "blocked=0"],
    );
    let client = connect(&socket);

    let admitted = client
        .submit("tenant-a", 0, None, &bench_spec())
        .expect("first job fits the queue");
    match client.submit("tenant-b", 0, None, &bench_spec()) {
        Err(ClientError::Rejected { kind, .. }) => assert_eq!(kind, "overloaded"),
        other => panic!("expected a typed overload rejection, got {other:?}"),
    }
    // The queued job holds the only slot; a zero-quota tenant is refused
    // even when the queue has room again after a cancel.
    let cancelled = client.cancel(admitted).expect("cancel queued job");
    assert_eq!(cancelled.get("status").map(String::as_str), Some("cancelled"));
    match client.submit("blocked", 0, None, &bench_spec()) {
        Err(ClientError::Rejected { kind, .. }) => assert_eq!(kind, "quota"),
        other => panic!("expected a typed quota rejection, got {other:?}"),
    }
    // Garbage specs are refused at admission, not left to burn retries.
    let bad = JobSpec::Run(RunSpec {
        config_spec: "topology=top1,small=true,scramble=true".to_owned(),
        program: "not riscv".to_owned(),
        max_cycles: 1000,
        checkpoint_every: 100,
        metrics: false,
    });
    match client.submit("tenant-a", 0, None, &bad) {
        Err(ClientError::Rejected { kind, .. }) => assert_eq!(kind, "invalid"),
        other => panic!("expected a typed validation rejection, got {other:?}"),
    }
    client.shutdown().expect("drain");
    assert!(wait_exit(&mut child, "daemon").success());
}

fn bench_spec() -> JobSpec {
    JobSpec::Bench(BenchSpec {
        cycles: 100,
        warmup: 10,
        cores: vec![16],
        workers: vec![1],
    })
}

#[test]
fn corrupt_journal_lines_are_skipped_and_surfaced_in_health() {
    let dir = scratch("journal");
    let socket = dir.join("serve.sock");
    let state = dir.join("state");

    // Session one: journal a real queued job, then drain.
    let mut child = daemon(&socket, &state, &["--workers", "0"]);
    let client = connect(&socket);
    let job = client
        .submit("tenant-a", 0, None, &bench_spec())
        .expect("job admitted");
    client.shutdown().expect("drain");
    assert!(wait_exit(&mut child, "first daemon").success());

    // Damage the journal: one garbage line, one truncated record.
    let journal = state.join("jobs.journal");
    let mut bytes = std::fs::read(&journal).expect("journal exists");
    bytes.extend_from_slice(b"!!! not a journal line\njob 99 {\"kind\":\"run\"");
    std::fs::write(&journal, &bytes).expect("journal writable");

    // Session two: the damage is skipped and surfaced, the intact job
    // survives and is still actionable.
    let mut child = daemon(&socket, &state, &["--workers", "0"]);
    let client = connect(&socket);
    let health = client.health().expect("health");
    assert_eq!(
        health.get("journal_skipped").map(String::as_str),
        Some("2"),
        "health: {health:?}"
    );
    assert_eq!(health.get("queued").map(String::as_str), Some("1"));
    let status = client.status(job).expect("job survived the damage");
    assert_eq!(status.get("status").map(String::as_str), Some("queued"));
    client.cancel(job).expect("cancel");
    client.shutdown().expect("drain");
    assert!(wait_exit(&mut child, "second daemon").success());
}
