//! End-to-end crash isolation for `mempool-run campaign --isolate`:
//! SIGKILL-ing a trial worker mid-campaign must cost only a retry — the
//! finished campaign's byte-stable JSON report is identical to an
//! undisturbed run's — and SIGTERM-ing the campaign itself must exit
//! with the documented status 3, leaving a manifest that resumes to the
//! identical report.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_mempool-run");

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mempool-crash-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A small isolated fault campaign: long enough per trial (in a debug
/// build) that the test can reliably signal it mid-flight.
fn campaign(manifest: &Path, json: &Path) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "campaign",
        "--small",
        "--topology",
        "top1",
        "--faults",
        "bank_fail=1,link_drop=0.001",
        "--trials",
        "3",
        "--load",
        "0.05",
        "--warmup",
        "100",
        "--measure",
        "2000",
        "--backoff-ms",
        "0",
        "--checkpoint-every",
        "256",
        "--isolate=1",
    ]);
    cmd.arg("--manifest").arg(manifest);
    cmd.arg("--json-out").arg(json);
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    cmd
}

/// Finds a live `trial-worker` child of `parent` by walking `/proc`.
fn find_worker(parent: u32) -> Option<u32> {
    for entry in std::fs::read_dir("/proc").ok()? {
        let entry = entry.ok()?;
        let Ok(pid) = entry.file_name().to_string_lossy().parse::<u32>() else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // stat: "pid (comm) state ppid ..." — comm may contain spaces.
        let after = match stat.rfind(')') {
            Some(i) => &stat[i + 1..],
            None => continue,
        };
        let ppid: u32 = match after.split_whitespace().nth(1).and_then(|s| s.parse().ok()) {
            Some(p) => p,
            None => continue,
        };
        if ppid != parent {
            continue;
        }
        let Ok(cmdline) = std::fs::read(format!("/proc/{pid}/cmdline")) else {
            continue;
        };
        if cmdline
            .split(|&b| b == 0)
            .any(|arg| arg == b"trial-worker")
        {
            return Some(pid);
        }
    }
    None
}

fn signal(pid: u32, sig: &str) {
    let _ = Command::new("kill").args([sig, &pid.to_string()]).status();
}

fn wait_with_deadline(child: &mut Child, deadline: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("wait works") {
            return status;
        }
        assert!(
            start.elapsed() < deadline,
            "campaign did not finish within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The undisturbed reference report for the campaign above.
fn baseline(dir: &Path) -> String {
    let manifest = dir.join("baseline.manifest");
    let json = dir.join("baseline.json");
    let status = campaign(&manifest, &json)
        .status()
        .expect("campaign spawns");
    assert!(status.success(), "baseline campaign failed: {status}");
    std::fs::read_to_string(&json).expect("baseline report written")
}

#[test]
fn sigkilled_worker_retries_to_bit_identical_results() {
    let dir = scratch("sigkill");
    let reference = baseline(&dir);

    let manifest = dir.join("killed.manifest");
    let json = dir.join("killed.json");
    let mut child = campaign(&manifest, &json).spawn().expect("campaign spawns");

    // SIGKILL the first worker we can catch mid-trial.
    let hunt_start = Instant::now();
    let mut killed = false;
    while hunt_start.elapsed() < Duration::from_secs(60) {
        if child.try_wait().expect("wait works").is_some() {
            break;
        }
        if let Some(worker) = find_worker(child.id()) {
            signal(worker, "-KILL");
            killed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(killed, "never caught a trial worker to kill");

    // The campaign must absorb the kill (one retry, resumed from the
    // trial checkpoint) and still produce the reference report.
    let status = wait_with_deadline(&mut child, Duration::from_secs(300));
    assert!(status.success(), "campaign died with the worker: {status}");
    let report = std::fs::read_to_string(&json).expect("report written");
    assert_eq!(
        report, reference,
        "post-kill report must be byte-identical to the undisturbed run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_interrupt_exits_3_and_resumes_bit_identically() {
    let dir = scratch("sigterm");
    let reference = baseline(&dir);

    let manifest = dir.join("interrupted.manifest");
    let json = dir.join("interrupted.json");
    let mut child = campaign(&manifest, &json).spawn().expect("campaign spawns");

    // Give the campaign time to get a trial genuinely in flight, then
    // interrupt it. The workload is far slower than 62 trials/second in
    // a debug build, so it cannot have finished yet.
    std::thread::sleep(Duration::from_millis(500));
    assert!(
        child.try_wait().expect("wait works").is_none(),
        "campaign finished before it could be interrupted; grow the workload"
    );
    signal(child.id(), "-TERM");
    let status = wait_with_deadline(&mut child, Duration::from_secs(60));
    assert_eq!(
        status.code(),
        Some(3),
        "interrupted campaigns exit with status 3"
    );

    // Re-running the identical command resumes from the manifest and
    // finishes; the final report matches the undisturbed reference.
    let status = campaign(&manifest, &json)
        .status()
        .expect("resume spawns");
    assert!(status.success(), "resume failed: {status}");
    let report = std::fs::read_to_string(&json).expect("report written");
    assert_eq!(
        report, reference,
        "resumed report must be byte-identical to the undisturbed run"
    );
    std::fs::remove_dir_all(&dir).ok();
}
