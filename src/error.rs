//! The suite-level error type behind the `mempool-run` CLI.
//!
//! The core crate's [`mempool::Error`] unifies everything the simulator
//! itself can raise, but the umbrella binary also drives the traffic
//! sweeps and fault campaigns, whose error types live *above* the core in
//! the dependency graph. [`Error`] is the top of that hierarchy: every
//! failure the CLI can hit converts into it, and [`Error::exit_code`]
//! maps it onto the documented process exit contract (`0` success, `1`
//! runtime error, `2` usage error).

use std::error::Error as StdError;
use std::fmt;

/// Any failure the `mempool-run` CLI (or an embedding harness) can hit.
///
/// Sources are preserved: walking [`std::error::Error::source`] reaches
/// the originating crate-level error, so callers can downcast or print a
/// full chain.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The command line was malformed. Exits with status 2.
    Usage(String),
    /// The simulator core failed (config, decode, bus, snapshot, ...).
    Sim(mempool::Error),
    /// A traffic sweep point failed.
    Sweep(mempool_traffic::SweepPointError),
    /// A fault campaign failed.
    Campaign(mempool_traffic::CampaignError),
    /// Assembling the program failed; carries the source path.
    Asm {
        /// Path of the assembly source file.
        path: String,
        /// The underlying assembler diagnostic.
        source: mempool_riscv::AsmError,
    },
    /// A file could not be read or written; carries the path.
    Io {
        /// Path of the file involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A free-form runtime failure (e.g. an engine digest divergence).
    Other(String),
    /// A campaign was interrupted (SIGINT/SIGTERM) after flushing its
    /// manifest and checkpoint; re-running with `--resume` continues
    /// exactly where it stopped. Exits with status 3 so scripts can tell
    /// a clean interruption from a runtime failure.
    Interrupted,
}

impl Error {
    /// Attaches a file path to an I/O error.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io { path: path.into(), source }
    }

    /// The process exit status this error maps to: `2` for usage errors,
    /// `3` for an interrupted (but cleanly checkpointed) campaign, `1` for
    /// everything else (`0` is reserved for success).
    pub fn exit_code(&self) -> u8 {
        match self {
            Error::Usage(_) => 2,
            Error::Interrupted => 3,
            _ => 1,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Usage(msg) => write!(f, "{msg}"),
            Error::Sim(e) => write!(f, "{e}"),
            Error::Sweep(e) => write!(f, "{e}"),
            Error::Campaign(e) => write!(f, "{e}"),
            Error::Asm { path, source } => write!(f, "{path}: {source}"),
            Error::Io { path, source } => write!(f, "{path}: {source}"),
            Error::Other(msg) => write!(f, "{msg}"),
            Error::Interrupted => {
                write!(f, "interrupted; progress saved, re-run with --resume to continue")
            }
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Usage(_) | Error::Other(_) | Error::Interrupted => None,
            Error::Sim(e) => Some(e),
            Error::Sweep(e) => Some(e),
            Error::Campaign(e) => Some(e),
            Error::Asm { source, .. } => Some(source),
            Error::Io { source, .. } => Some(source),
        }
    }
}

impl From<mempool::Error> for Error {
    fn from(e: mempool::Error) -> Self {
        Error::Sim(e)
    }
}

impl From<mempool_traffic::SweepPointError> for Error {
    fn from(e: mempool_traffic::SweepPointError) -> Self {
        Error::Sweep(e)
    }
}

impl From<mempool_traffic::CampaignError> for Error {
    fn from(e: mempool_traffic::CampaignError) -> Self {
        Error::Campaign(e)
    }
}

impl From<mempool::ValidateConfigError> for Error {
    fn from(e: mempool::ValidateConfigError) -> Self {
        Error::Sim(e.into())
    }
}

impl From<mempool::SimError> for Error {
    fn from(e: mempool::SimError) -> Self {
        Error::Sim(e.into())
    }
}

impl From<mempool::MetricsError> for Error {
    fn from(e: mempool::MetricsError) -> Self {
        Error::Sim(e.into())
    }
}

impl From<mempool::SnapshotError> for Error {
    fn from(e: mempool::SnapshotError) -> Self {
        Error::Sim(e.into())
    }
}

impl From<mempool::BusError> for Error {
    fn from(e: mempool::BusError) -> Self {
        Error::Sim(e.into())
    }
}

impl From<String> for Error {
    fn from(msg: String) -> Self {
        Error::Other(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_error() -> mempool::MetricsError {
        mempool::MetricsError::UnknownScope {
            path: "cluster/tile99".to_owned(),
        }
    }

    #[test]
    fn exit_codes_follow_the_cli_contract() {
        assert_eq!(Error::Usage("bad flag".into()).exit_code(), 2);
        assert_eq!(Error::Other("boom".into()).exit_code(), 1);
        assert_eq!(Error::Interrupted.exit_code(), 3);
        let sim: Error = metrics_error().into();
        assert_eq!(sim.exit_code(), 1);
    }

    #[test]
    fn source_chain_reaches_the_inner_error() {
        let e: Error = metrics_error().into();
        // Error::Sim -> mempool::Error::Metrics -> MetricsError
        let mid = e.source().expect("suite error has a source");
        let inner = mid.source().expect("core error has a source");
        assert!(inner.to_string().contains("cluster/tile99"));
        assert!(e.to_string().contains("metrics"));
    }
}
