//! `mempool-run` — assemble an RV32IMA source file and execute it on the
//! cycle-accurate MemPool cluster.
//!
//! ```console
//! $ mempool-run run program.s                        # 256 cores, TopH
//! $ mempool-run run --topology top1 --small prog.s  # 64 cores, Top1
//! $ mempool-run run --metrics-json m.json --trace-out t.json prog.s
//! $ mempool-run bench --out bench.json --cores 16
//! $ mempool-run campaign --small --loads 0.02,0.10 --metrics-json sweep.json
//! ```
//!
//! The pre-subcommand flat form (`mempool-run [OPTIONS] <program.s>`) still
//! parses — it behaves exactly like `run` — but prints a one-line
//! deprecation note on stderr.

use mempool::{
    ClusterConfig, ClusterSnapshot, FaultPlan, FaultSpec, ObsConfig, ProfileConfig,
    ResilienceConfig, SanitizerConfig, SimSession, Topology,
};
use mempool_riscv::{assemble, Reg};
use mempool_suite::error::Error;
use mempool_traffic::{
    run_point_with_metrics, run_trial_worker, Executor, ExecutorConfig, MeteredPoint, Pattern,
    Windows, WorkerJob,
};
use std::fmt;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Duration;

#[derive(Debug)]
struct Options {
    topology: Topology,
    small: bool,
    scramble: bool,
    max_cycles: u64,
    dump_regs: Option<usize>,
    dump_mem: Option<(u32, usize)>,
    trace_core: Option<usize>,
    functional: bool,
    listing: bool,
    emit_bin: Option<String>,
    describe: bool,
    faults: Option<FaultSpec>,
    seed: u64,
    checkpoint_every: u64,
    checkpoint_file: Option<String>,
    resume: Option<String>,
    json: bool,
    parallel: usize,
    metrics_json: Option<String>,
    trace_out: Option<String>,
    trace_sample: u64,
    profile_out: Option<String>,
    power_out: Option<String>,
    bench_json: Option<String>,
    bench_cores: Vec<usize>,
    bench_cycles: u64,
    max_wall_secs: Option<u64>,
    sanitize: bool,
    path: String,
}

/// Options of the `bench` subcommand (also assembled from the legacy
/// `--bench-json` flat flags).
#[derive(Debug, PartialEq, Eq)]
struct BenchOptions {
    out: String,
    cores: Vec<usize>,
    cycles: u64,
    parallel: usize,
    bench_workers: Vec<usize>,
}

/// Options of the `profile` subcommand: one profiled program run with the
/// per-region summary on stdout and optional folded-stack / power exports.
#[derive(Debug, PartialEq, Eq)]
struct ProfileOptions {
    topology: Topology,
    small: bool,
    scramble: bool,
    max_cycles: u64,
    parallel: usize,
    max_pcs: usize,
    window: u64,
    top: usize,
    out: Option<String>,
    power_out: Option<String>,
    path: String,
}

/// Options of the `campaign` subcommand. Without `--faults` this is a
/// synthetic-traffic load sweep with full observability exports; with
/// `--faults` it is a supervised fault-injection campaign run by the
/// crash-isolated executor.
#[derive(Debug, PartialEq)]
struct CampaignOptions {
    topology: Topology,
    small: bool,
    scramble: bool,
    pattern: Pattern,
    pattern_label: String,
    loads: Vec<f64>,
    windows: Windows,
    seed: u64,
    metrics_json: Option<String>,
    trace_out: Option<String>,
    trace_sample: u64,
    // Fault-campaign (executor) mode; active when `faults` is set.
    faults: Option<FaultSpec>,
    trials: u32,
    manifest: Option<String>,
    load: f64,
    deadline_secs: Option<u64>,
    cycle_budget: Option<u64>,
    max_attempts: u32,
    backoff_ms: u64,
    checkpoint_every: u64,
    isolate: Option<usize>,
    sanitize: bool,
    json_out: Option<String>,
}

/// A parsed command line: which subcommand runs, with its options.
#[derive(Debug)]
enum Command {
    Run { opts: Box<Options>, legacy: bool },
    Bench(BenchOptions),
    Campaign(Box<CampaignOptions>),
    Profile(ProfileOptions),
    /// Hidden: one isolated campaign trial, driven over stdin/stdout by a
    /// parent `campaign --isolate` process.
    TrialWorker,
}

const USAGE: &str = "usage: mempool-run <run|bench|campaign|profile> [OPTIONS]
       mempool-run [OPTIONS] <program.s>   (deprecated; same as `run`)

subcommands:
  run        assemble and execute a program (default; see `run --help`)
  bench      the simulator benchmark matrix (see `bench --help`)
  campaign   a synthetic-traffic load sweep with metrics (see `campaign --help`)
  profile    a profiled run: region/stall breakdown, flamegraph and power
             exports (see `profile --help`)

run options:
  --topology <top1|top4|topH|ideal>  interconnect topology (default topH)
  --small                            64-core cluster instead of 256
  --no-scramble                      disable the hybrid addressing scheme
  --max-cycles <n>                   cycle budget (default 100000000)
  --dump-regs <core>                 print core's registers after the run
  --dump-mem <addr>:<words>          print an L1 region after the run
  --trace-core <core>                print the core's last 32 retired instructions
  --functional                       run on the untimed reference simulator
  --listing                          print the assembled program and exit
  --emit-bin <file>                  write the assembled image (LE words) and exit
  --describe                         print the instantiated hardware and exit
  --faults <spec>                    inject faults: key=value pairs, e.g.
                                     bank_fail=2,link_stall=0.01 (see FaultSpec)
  --seed <n>                         fault-injection seed (default 0)
  --checkpoint-every <n>             write a checkpoint every n cycles
  --checkpoint-file <file>           checkpoint path (default <program.s>.ckpt)
  --resume <file>                    restore a checkpoint and continue the run
  --json                             machine-readable result (incl. state digest)
  --parallel <n>                     step tiles on n worker threads (0 = serial,
                                     bit-identical results either way)
  --metrics-json <file>              export the mempool-metrics-v1 registry
                                     (per-scope counters + latency histograms)
  --trace-out <file>                 export a Chrome trace_event timeline
  --trace-sample <n>                 sample every n-th delivery (default 64;
                                     requires --trace-out)
  --profile-out <file>               export the folded-stack (flamegraph)
                                     profile of the run
  --power-out <file>                 export the mempool-power-v1 power
                                     timeline (1024-cycle windows)
  --max-wall-secs <s>                wall-clock limit; the run stops with a
                                     typed timeout error when it expires
  --sanitize                         check cycle-level interconnect invariants
                                     every cycle; violations are an error
  --bench-json <file>                deprecated; use `mempool-run bench --out`
  --bench-cores <16|256|all>         bench cluster sizes (default all)
  --bench-cycles <n>                 measured cycles per bench point (default 2000)
  --help                             this text

exit status: 0 on success, 1 on runtime errors, 2 on usage errors";

const BENCH_USAGE: &str = "usage: mempool-run bench --out <file> [OPTIONS]

options:
  --out <file>            write the mempool-bench-v1 report here (required;
                          --metrics-json is accepted as an alias)
  --cores <16|256|all>    bench cluster sizes (default all)
  --cycles <n>            measured cycles per bench point (default 2000)
  --parallel <n>          worker threads for the parallel-engine points
  --bench-workers <list>  comma-separated worker counts to sweep (e.g. 2,4,8);
                          one parallel point and digest check per count
  --help                  this text

exit status: 0 on success (all digests match), 1 on runtime errors or a
serial/parallel digest divergence, 2 on usage errors, 3 when interrupted
(completed points are still flushed to --out)";

const CAMPAIGN_USAGE: &str = "usage: mempool-run campaign [OPTIONS]

Without --faults: a synthetic-traffic load sweep with metrics exports.
With --faults: a supervised fault-injection campaign — each trial runs
under the crash-isolated executor with deadlines, retry-from-checkpoint
with seeded backoff, and quarantine of deterministically failing trials.

sweep options:
  --topology <top1|top4|topH|ideal>  interconnect topology (default topH)
  --small                            64-core cluster instead of 256
  --no-scramble                      disable the hybrid addressing scheme
  --pattern <uniform|plocal=<p>>     traffic pattern (default uniform)
  --loads <l1,l2,...>                offered loads in requests/core/cycle
                                     (default 0.02,0.05,0.10,0.20)
  --warmup <n>                       warm-up cycles (default 1000)
  --measure <n>                      measured cycles (default 8000)
  --drain <n>                        drain-phase cycle cap (default 50000)
  --seed <n>                         traffic (and fault) seed (default 0)
  --metrics-json <file>              write the sweep + per-point
                                     mempool-metrics-v1 registries here
  --trace-out <file>                 Chrome trace of the last point's run
  --trace-sample <n>                 sample every n-th delivery (default 64)

fault-campaign options (require --faults):
  --faults <spec>                    fault intensity, e.g. bank_fail=2,link_drop=0.001
  --manifest <file>                  trial manifest, the campaign's single
                                     source of truth (required; re-running
                                     against it resumes where it stopped)
  --trials <n>                       trials to run (default 8)
  --load <l>                         offered load per core (default 0.05)
  --deadline-secs <s>                wall-clock deadline per trial attempt
  --cycle-budget <n>                 sim-cycle budget per trial
  --max-attempts <n>                 attempts before quarantine (default 3)
  --backoff-ms <n>                   retry backoff base (default 50; 0 disables)
  --checkpoint-every <n>             mid-trial checkpoint interval (default 4096)
  --isolate[=N]                      run trials in child worker processes,
                                     N at a time (default 1); a crashed or
                                     killed worker is retried, not fatal
  --sanitize                         run every trial under the cycle-level
                                     invariant sanitizer
  --json-out <file>                  write the byte-stable campaign report here
  --help                             this text

exit status: 0 on success, 1 on runtime errors, 2 on usage errors, 3 when
interrupted by SIGINT/SIGTERM (progress saved; re-run to resume)";

const PROFILE_USAGE: &str = "usage: mempool-run profile [OPTIONS] <program.s>

Assembles and executes the program with the program-level profiler enabled,
then prints the per-region cycle/stall breakdown and the hottest PCs.

options:
  --topology <top1|top4|topH|ideal>  interconnect topology (default topH)
  --small                            64-core cluster instead of 256
  --no-scramble                      disable the hybrid addressing scheme
  --max-cycles <n>                   cycle budget (default 100000000)
  --parallel <n>                     step tiles on n worker threads (0 = serial,
                                     bit-identical results either way)
  --max-pcs <n>                      per-core (region, PC)-pair bound
                                     (default 4096)
  --window <n>                       power-sampling window in cycles
                                     (default 1024; 0 disables power windows)
  --top <n>                          hottest PCs to print (default 10)
  --out <file>                       write the folded-stack (flamegraph) profile
  --power-out <file>                 write the mempool-power-v1 power timeline
  --help                             this text

exit status: 0 on success, 1 on runtime errors, 2 on usage errors";

/// A typed argument-parsing failure (or the `--help` request, which is not
/// an error and exits 0).
#[derive(Debug, PartialEq, Eq)]
enum ParseArgsError {
    /// `--help`/`-h`: print usage on stdout and exit successfully.
    Help,
    /// An option that requires a value was last on the command line.
    MissingValue(&'static str),
    /// An option's value did not parse; `reason` names what was expected.
    InvalidValue {
        option: &'static str,
        reason: String,
    },
    /// An option we do not recognize.
    UnknownOption(String),
    /// A second positional argument after the program path.
    UnexpectedArgument(String),
    /// No program path was given (and no `--describe`).
    MissingProgram,
    /// A required option was not given.
    MissingOption(&'static str),
    /// Two options that cannot be combined.
    Conflict(&'static str),
}

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseArgsError::Help => write!(f, "help requested"),
            ParseArgsError::MissingValue(option) => write!(f, "{option} expects a value"),
            ParseArgsError::InvalidValue { option, reason } => {
                write!(f, "invalid {option} value: {reason}")
            }
            ParseArgsError::UnknownOption(arg) => write!(f, "unknown option `{arg}`"),
            ParseArgsError::UnexpectedArgument(arg) => {
                write!(f, "unexpected argument `{arg}` (program path already given)")
            }
            ParseArgsError::MissingProgram => write!(f, "no program path given"),
            ParseArgsError::MissingOption(option) => write!(f, "{option} is required"),
            ParseArgsError::Conflict(what) => write!(f, "{what}"),
        }
    }
}

fn invalid(option: &'static str, reason: &str) -> ParseArgsError {
    ParseArgsError::InvalidValue {
        option,
        reason: reason.to_owned(),
    }
}

fn parse_topology(value: &str) -> Result<Topology, ParseArgsError> {
    match value {
        "top1" => Ok(Topology::Top1),
        "top4" => Ok(Topology::Top4),
        "topH" | "toph" => Ok(Topology::TopH),
        "ideal" => Ok(Topology::Ideal),
        other => Err(invalid(
            "--topology",
            &format!("unknown topology `{other}`"),
        )),
    }
}

/// Splits the command line into a subcommand and its options. An argument
/// list that does not start with a subcommand name falls back to the
/// legacy flat `run` form (reported via `legacy: true` so the caller can
/// print a deprecation note).
fn parse_command(args: Vec<String>) -> Result<Command, (ParseArgsError, &'static str)> {
    match args.first().map(String::as_str) {
        Some("run") => parse_args(args.into_iter().skip(1))
            .map(|o| Command::Run {
                opts: Box::new(o),
                legacy: false,
            })
            .map_err(|e| (e, USAGE)),
        Some("bench") => parse_bench_args(args.into_iter().skip(1))
            .map(Command::Bench)
            .map_err(|e| (e, BENCH_USAGE)),
        Some("campaign") => parse_campaign_args(args.into_iter().skip(1))
            .map(|o| Command::Campaign(Box::new(o)))
            .map_err(|e| (e, CAMPAIGN_USAGE)),
        // Hidden: spawned by `campaign --isolate`, not for interactive use.
        Some("trial-worker") => Ok(Command::TrialWorker),
        Some("profile") => parse_profile_args(args.into_iter().skip(1))
            .map(Command::Profile)
            .map_err(|e| (e, PROFILE_USAGE)),
        _ => parse_args(args)
            .map(|o| Command::Run {
                opts: Box::new(o),
                legacy: true,
            })
            .map_err(|e| (e, USAGE)),
    }
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Options, ParseArgsError> {
    let mut opts = Options {
        topology: Topology::TopH,
        small: false,
        scramble: true,
        max_cycles: 100_000_000,
        dump_regs: None,
        dump_mem: None,
        trace_core: None,
        functional: false,
        listing: false,
        emit_bin: None,
        describe: false,
        faults: None,
        seed: 0,
        checkpoint_every: 0,
        checkpoint_file: None,
        resume: None,
        json: false,
        parallel: 0,
        metrics_json: None,
        trace_out: None,
        trace_sample: 64,
        profile_out: None,
        power_out: None,
        bench_json: None,
        bench_cores: vec![16, 256],
        bench_cycles: 2_000,
        max_wall_secs: None,
        sanitize: false,
        path: String::new(),
    };
    let mut trace_sample_given = false;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &'static str| {
            args.next().ok_or(ParseArgsError::MissingValue(name))
        };
        match arg.as_str() {
            "--topology" => opts.topology = parse_topology(&value("--topology")?)?,
            "--small" => opts.small = true,
            "--no-scramble" => opts.scramble = false,
            "--max-cycles" => {
                opts.max_cycles = value("--max-cycles")?
                    .parse()
                    .map_err(|_| invalid("--max-cycles", "expected a cycle count"))?;
            }
            "--dump-regs" => {
                opts.dump_regs = Some(
                    value("--dump-regs")?
                        .parse()
                        .map_err(|_| invalid("--dump-regs", "expected a core index"))?,
                );
            }
            "--dump-mem" => {
                let spec = value("--dump-mem")?;
                let (addr, words) = spec
                    .split_once(':')
                    .ok_or_else(|| invalid("--dump-mem", "expected <addr>:<words>"))?;
                let addr =
                    parse_u32(addr).ok_or_else(|| invalid("--dump-mem", "bad address"))?;
                let words = words
                    .parse()
                    .map_err(|_| invalid("--dump-mem", "bad word count"))?;
                opts.dump_mem = Some((addr, words));
            }
            "--trace-core" => {
                opts.trace_core = Some(
                    value("--trace-core")?
                        .parse()
                        .map_err(|_| invalid("--trace-core", "expected a core index"))?,
                );
            }
            "--functional" => opts.functional = true,
            "--listing" => opts.listing = true,
            "--emit-bin" => opts.emit_bin = Some(value("--emit-bin")?),
            "--describe" => opts.describe = true,
            "--faults" => {
                opts.faults = Some(value("--faults")?.parse().map_err(
                    |e: mempool::ParseFaultSpecError| invalid("--faults", &e.to_string()),
                )?);
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| invalid("--seed", "expected an integer"))?;
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|_| invalid("--checkpoint-every", "expected a cycle count"))?;
                if opts.checkpoint_every == 0 {
                    return Err(invalid("--checkpoint-every", "interval must be nonzero"));
                }
            }
            "--checkpoint-file" => opts.checkpoint_file = Some(value("--checkpoint-file")?),
            "--resume" => opts.resume = Some(value("--resume")?),
            "--json" => opts.json = true,
            "--parallel" => {
                opts.parallel = value("--parallel")?
                    .parse()
                    .map_err(|_| invalid("--parallel", "expected a worker count"))?;
            }
            "--metrics-json" => opts.metrics_json = Some(value("--metrics-json")?),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--trace-sample" => {
                opts.trace_sample = value("--trace-sample")?
                    .parse()
                    .map_err(|_| invalid("--trace-sample", "expected a sampling interval"))?;
                if opts.trace_sample == 0 {
                    return Err(invalid("--trace-sample", "interval must be nonzero"));
                }
                trace_sample_given = true;
            }
            "--profile-out" => opts.profile_out = Some(value("--profile-out")?),
            "--power-out" => opts.power_out = Some(value("--power-out")?),
            "--max-wall-secs" => {
                let secs: u64 = value("--max-wall-secs")?
                    .parse()
                    .map_err(|_| invalid("--max-wall-secs", "expected seconds"))?;
                if secs == 0 {
                    return Err(invalid("--max-wall-secs", "limit must be nonzero"));
                }
                opts.max_wall_secs = Some(secs);
            }
            "--sanitize" => opts.sanitize = true,
            "--bench-json" => opts.bench_json = Some(value("--bench-json")?),
            "--bench-cores" => {
                opts.bench_cores = parse_bench_cores("--bench-cores", &value("--bench-cores")?)?;
            }
            "--bench-cycles" => {
                opts.bench_cycles = value("--bench-cycles")?
                    .parse()
                    .map_err(|_| invalid("--bench-cycles", "expected a cycle count"))?;
                if opts.bench_cycles == 0 {
                    return Err(invalid("--bench-cycles", "must be nonzero"));
                }
            }
            "--help" | "-h" => return Err(ParseArgsError::Help),
            _ if arg.starts_with('-') => return Err(ParseArgsError::UnknownOption(arg)),
            _ if opts.path.is_empty() => opts.path = arg,
            _ => return Err(ParseArgsError::UnexpectedArgument(arg)),
        }
    }
    if opts.path.is_empty() && !opts.describe && opts.bench_json.is_none() {
        return Err(ParseArgsError::MissingProgram);
    }
    if trace_sample_given && opts.trace_out.is_none() {
        return Err(ParseArgsError::Conflict(
            "--trace-sample only applies to --trace-out",
        ));
    }
    if opts.bench_json.is_some() {
        if !opts.path.is_empty() {
            return Err(ParseArgsError::Conflict(
                "--bench-json runs its own workload; drop the program path",
            ));
        }
        if opts.functional {
            return Err(ParseArgsError::Conflict(
                "--bench-json requires the cycle-accurate simulator",
            ));
        }
        if opts.faults.is_some() {
            return Err(ParseArgsError::Conflict(
                "--bench-json measures the fault-free engines",
            ));
        }
        if opts.json {
            return Err(ParseArgsError::Conflict(
                "--bench-json already writes a JSON report",
            ));
        }
        if opts.metrics_json.is_some()
            || opts.trace_out.is_some()
            || opts.profile_out.is_some()
            || opts.power_out.is_some()
        {
            return Err(ParseArgsError::Conflict(
                "--bench-json writes its own report; use `mempool-run bench`",
            ));
        }
        if opts.checkpoint_every > 0 || opts.checkpoint_file.is_some() || opts.resume.is_some() {
            return Err(ParseArgsError::Conflict(
                "--bench-json cannot be combined with checkpointing",
            ));
        }
    }
    if opts.functional && opts.parallel > 0 {
        return Err(ParseArgsError::Conflict(
            "--parallel requires the cycle-accurate simulator",
        ));
    }
    if opts.functional {
        if opts.faults.is_some() {
            return Err(ParseArgsError::Conflict(
                "--faults requires the cycle-accurate simulator",
            ));
        }
        if opts.checkpoint_every > 0 || opts.checkpoint_file.is_some() || opts.resume.is_some() {
            return Err(ParseArgsError::Conflict(
                "checkpointing requires the cycle-accurate simulator",
            ));
        }
        if opts.json {
            return Err(ParseArgsError::Conflict(
                "--json requires the cycle-accurate simulator",
            ));
        }
        if opts.metrics_json.is_some() || opts.trace_out.is_some() {
            return Err(ParseArgsError::Conflict(
                "--metrics-json/--trace-out require the cycle-accurate simulator",
            ));
        }
        if opts.profile_out.is_some() || opts.power_out.is_some() {
            return Err(ParseArgsError::Conflict(
                "--profile-out/--power-out require the cycle-accurate simulator",
            ));
        }
        if opts.max_wall_secs.is_some() || opts.sanitize {
            return Err(ParseArgsError::Conflict(
                "--max-wall-secs/--sanitize require the cycle-accurate simulator",
            ));
        }
    }
    if opts.json && (opts.dump_regs.is_some() || opts.dump_mem.is_some() || opts.trace_core.is_some())
    {
        return Err(ParseArgsError::Conflict(
            "--json cannot be combined with --dump-regs/--dump-mem/--trace-core",
        ));
    }
    Ok(opts)
}

fn parse_bench_cores(option: &'static str, value: &str) -> Result<Vec<usize>, ParseArgsError> {
    match value {
        "16" => Ok(vec![16]),
        "256" => Ok(vec![256]),
        "all" => Ok(vec![16, 256]),
        other => Err(invalid(
            option,
            &format!("expected 16, 256 or all, got `{other}`"),
        )),
    }
}

fn parse_bench_args(
    args: impl IntoIterator<Item = String>,
) -> Result<BenchOptions, ParseArgsError> {
    let mut out = None;
    let mut cores = vec![16, 256];
    let mut cycles = 2_000;
    let mut parallel = 0;
    let mut bench_workers = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &'static str| {
            args.next().ok_or(ParseArgsError::MissingValue(name))
        };
        match arg.as_str() {
            "--out" => out = Some(value("--out")?),
            // Shared output flag across subcommands; for bench the metrics
            // document *is* the report.
            "--metrics-json" => out = Some(value("--metrics-json")?),
            "--cores" => cores = parse_bench_cores("--cores", &value("--cores")?)?,
            "--cycles" => {
                cycles = value("--cycles")?
                    .parse()
                    .map_err(|_| invalid("--cycles", "expected a cycle count"))?;
                if cycles == 0 {
                    return Err(invalid("--cycles", "must be nonzero"));
                }
            }
            "--parallel" => {
                parallel = value("--parallel")?
                    .parse()
                    .map_err(|_| invalid("--parallel", "expected a worker count"))?;
            }
            "--bench-workers" => {
                let list = value("--bench-workers")?;
                bench_workers = list
                    .split(',')
                    .map(|w| match w.trim().parse::<usize>() {
                        Ok(n) if n > 0 => Ok(n),
                        _ => Err(invalid(
                            "--bench-workers",
                            &format!("expected nonzero worker counts, got `{w}`"),
                        )),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if bench_workers.is_empty() {
                    return Err(invalid("--bench-workers", "expected at least one count"));
                }
            }
            "--help" | "-h" => return Err(ParseArgsError::Help),
            _ if arg.starts_with('-') => return Err(ParseArgsError::UnknownOption(arg)),
            _ => return Err(ParseArgsError::UnexpectedArgument(arg)),
        }
    }
    let out = out.ok_or(ParseArgsError::MissingOption("--out"))?;
    Ok(BenchOptions {
        out,
        cores,
        cycles,
        parallel,
        bench_workers,
    })
}

fn parse_campaign_args(
    args: impl IntoIterator<Item = String>,
) -> Result<CampaignOptions, ParseArgsError> {
    let mut opts = CampaignOptions {
        topology: Topology::TopH,
        small: false,
        scramble: true,
        pattern: Pattern::Uniform,
        pattern_label: "uniform".to_owned(),
        loads: vec![0.02, 0.05, 0.10, 0.20],
        windows: Windows::default(),
        seed: 0,
        metrics_json: None,
        trace_out: None,
        trace_sample: 64,
        faults: None,
        trials: 8,
        manifest: None,
        load: 0.05,
        deadline_secs: None,
        cycle_budget: None,
        max_attempts: 3,
        backoff_ms: 50,
        checkpoint_every: 4_096,
        isolate: None,
        sanitize: false,
        json_out: None,
    };
    let mut trace_sample_given = false;
    let mut fault_flag_given: Option<&'static str> = None;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &'static str| {
            args.next().ok_or(ParseArgsError::MissingValue(name))
        };
        match arg.as_str() {
            "--topology" => opts.topology = parse_topology(&value("--topology")?)?,
            "--small" => opts.small = true,
            "--no-scramble" => opts.scramble = false,
            "--pattern" => {
                let spec = value("--pattern")?;
                opts.pattern = match spec.as_str() {
                    "uniform" => Pattern::Uniform,
                    other => match other.strip_prefix("plocal=") {
                        Some(p) => {
                            let p_local: f64 = p.parse().map_err(|_| {
                                invalid("--pattern", "expected plocal=<probability>")
                            })?;
                            if !(0.0..=1.0).contains(&p_local) {
                                return Err(invalid(
                                    "--pattern",
                                    "plocal probability must be in [0, 1]",
                                ));
                            }
                            Pattern::PLocal { p_local }
                        }
                        None => {
                            return Err(invalid(
                                "--pattern",
                                &format!("unknown pattern `{other}`"),
                            ))
                        }
                    },
                };
                opts.pattern_label = spec;
            }
            "--loads" => {
                let list = value("--loads")?;
                let mut loads = Vec::new();
                for part in list.split(',') {
                    let load: f64 = part
                        .trim()
                        .parse()
                        .map_err(|_| invalid("--loads", "expected comma-separated loads"))?;
                    if !(load > 0.0 && load <= 1.0) {
                        return Err(invalid("--loads", "loads must be in (0, 1]"));
                    }
                    loads.push(load);
                }
                if loads.is_empty() {
                    return Err(invalid("--loads", "at least one load is required"));
                }
                opts.loads = loads;
            }
            "--warmup" => {
                opts.windows.warmup = value("--warmup")?
                    .parse()
                    .map_err(|_| invalid("--warmup", "expected a cycle count"))?;
            }
            "--measure" => {
                opts.windows.measure = value("--measure")?
                    .parse()
                    .map_err(|_| invalid("--measure", "expected a cycle count"))?;
                if opts.windows.measure == 0 {
                    return Err(invalid("--measure", "must be nonzero"));
                }
            }
            "--drain" => {
                opts.windows.drain = value("--drain")?
                    .parse()
                    .map_err(|_| invalid("--drain", "expected a cycle count"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| invalid("--seed", "expected an integer"))?;
            }
            "--metrics-json" => opts.metrics_json = Some(value("--metrics-json")?),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--trace-sample" => {
                opts.trace_sample = value("--trace-sample")?
                    .parse()
                    .map_err(|_| invalid("--trace-sample", "expected a sampling interval"))?;
                if opts.trace_sample == 0 {
                    return Err(invalid("--trace-sample", "interval must be nonzero"));
                }
                trace_sample_given = true;
            }
            "--faults" => {
                opts.faults = Some(value("--faults")?.parse().map_err(
                    |e: mempool::ParseFaultSpecError| invalid("--faults", &e.to_string()),
                )?);
            }
            "--manifest" => {
                opts.manifest = Some(value("--manifest")?);
                fault_flag_given.get_or_insert("--manifest");
            }
            "--trials" => {
                opts.trials = value("--trials")?
                    .parse()
                    .map_err(|_| invalid("--trials", "expected a trial count"))?;
                if opts.trials == 0 {
                    return Err(invalid("--trials", "must be nonzero"));
                }
                fault_flag_given.get_or_insert("--trials");
            }
            "--load" => {
                opts.load = value("--load")?
                    .parse()
                    .map_err(|_| invalid("--load", "expected a load in (0, 1]"))?;
                if !(opts.load > 0.0 && opts.load <= 1.0) {
                    return Err(invalid("--load", "load must be in (0, 1]"));
                }
                fault_flag_given.get_or_insert("--load");
            }
            "--deadline-secs" => {
                let secs: u64 = value("--deadline-secs")?
                    .parse()
                    .map_err(|_| invalid("--deadline-secs", "expected seconds"))?;
                if secs == 0 {
                    return Err(invalid("--deadline-secs", "deadline must be nonzero"));
                }
                opts.deadline_secs = Some(secs);
                fault_flag_given.get_or_insert("--deadline-secs");
            }
            "--cycle-budget" => {
                let budget: u64 = value("--cycle-budget")?
                    .parse()
                    .map_err(|_| invalid("--cycle-budget", "expected a cycle count"))?;
                if budget == 0 {
                    return Err(invalid("--cycle-budget", "budget must be nonzero"));
                }
                opts.cycle_budget = Some(budget);
                fault_flag_given.get_or_insert("--cycle-budget");
            }
            "--max-attempts" => {
                opts.max_attempts = value("--max-attempts")?
                    .parse()
                    .map_err(|_| invalid("--max-attempts", "expected an attempt count"))?;
                if opts.max_attempts == 0 {
                    return Err(invalid("--max-attempts", "must be nonzero"));
                }
                fault_flag_given.get_or_insert("--max-attempts");
            }
            "--backoff-ms" => {
                opts.backoff_ms = value("--backoff-ms")?
                    .parse()
                    .map_err(|_| invalid("--backoff-ms", "expected milliseconds"))?;
                fault_flag_given.get_or_insert("--backoff-ms");
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|_| invalid("--checkpoint-every", "expected a cycle count"))?;
                fault_flag_given.get_or_insert("--checkpoint-every");
            }
            "--isolate" => {
                opts.isolate = Some(1);
                fault_flag_given.get_or_insert("--isolate");
            }
            arg_str if arg_str.starts_with("--isolate=") => {
                let n: usize = arg_str["--isolate=".len()..]
                    .parse()
                    .map_err(|_| invalid("--isolate", "expected a worker count"))?;
                if n == 0 {
                    return Err(invalid("--isolate", "worker count must be nonzero"));
                }
                opts.isolate = Some(n);
                fault_flag_given.get_or_insert("--isolate");
            }
            "--sanitize" => {
                opts.sanitize = true;
                fault_flag_given.get_or_insert("--sanitize");
            }
            "--json-out" => {
                opts.json_out = Some(value("--json-out")?);
                fault_flag_given.get_or_insert("--json-out");
            }
            "--help" | "-h" => return Err(ParseArgsError::Help),
            _ if arg.starts_with('-') => return Err(ParseArgsError::UnknownOption(arg)),
            _ => return Err(ParseArgsError::UnexpectedArgument(arg)),
        }
    }
    if trace_sample_given && opts.trace_out.is_none() {
        return Err(ParseArgsError::Conflict(
            "--trace-sample only applies to --trace-out",
        ));
    }
    if opts.faults.is_some() {
        if opts.manifest.is_none() {
            return Err(ParseArgsError::MissingOption("--manifest"));
        }
        if opts.metrics_json.is_some() || opts.trace_out.is_some() {
            return Err(ParseArgsError::Conflict(
                "--metrics-json/--trace-out apply to the load sweep; use --json-out with --faults",
            ));
        }
    } else if let Some(flag) = fault_flag_given {
        return Err(ParseArgsError::Conflict(
            match flag {
                "--manifest" => "--manifest requires --faults",
                "--trials" => "--trials requires --faults",
                "--load" => "--load requires --faults",
                "--deadline-secs" => "--deadline-secs requires --faults",
                "--cycle-budget" => "--cycle-budget requires --faults",
                "--max-attempts" => "--max-attempts requires --faults",
                "--backoff-ms" => "--backoff-ms requires --faults",
                "--checkpoint-every" => "--checkpoint-every requires --faults",
                "--isolate" => "--isolate requires --faults",
                "--sanitize" => "--sanitize requires --faults",
                _ => "--json-out requires --faults",
            },
        ));
    }
    Ok(opts)
}

fn parse_profile_args(
    args: impl IntoIterator<Item = String>,
) -> Result<ProfileOptions, ParseArgsError> {
    let mut opts = ProfileOptions {
        topology: Topology::TopH,
        small: false,
        scramble: true,
        max_cycles: 100_000_000,
        parallel: 0,
        max_pcs: 4096,
        window: 1024,
        top: 10,
        out: None,
        power_out: None,
        path: String::new(),
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &'static str| {
            args.next().ok_or(ParseArgsError::MissingValue(name))
        };
        match arg.as_str() {
            "--topology" => opts.topology = parse_topology(&value("--topology")?)?,
            "--small" => opts.small = true,
            "--no-scramble" => opts.scramble = false,
            "--max-cycles" => {
                opts.max_cycles = value("--max-cycles")?
                    .parse()
                    .map_err(|_| invalid("--max-cycles", "expected a cycle count"))?;
            }
            "--parallel" => {
                opts.parallel = value("--parallel")?
                    .parse()
                    .map_err(|_| invalid("--parallel", "expected a worker count"))?;
            }
            "--max-pcs" => {
                opts.max_pcs = value("--max-pcs")?
                    .parse()
                    .map_err(|_| invalid("--max-pcs", "expected a PC-table bound"))?;
                if opts.max_pcs == 0 {
                    return Err(invalid("--max-pcs", "bound must be nonzero"));
                }
            }
            "--window" => {
                opts.window = value("--window")?
                    .parse()
                    .map_err(|_| invalid("--window", "expected a cycle count"))?;
            }
            "--top" => {
                opts.top = value("--top")?
                    .parse()
                    .map_err(|_| invalid("--top", "expected a PC count"))?;
            }
            "--out" => opts.out = Some(value("--out")?),
            "--power-out" => opts.power_out = Some(value("--power-out")?),
            "--help" | "-h" => return Err(ParseArgsError::Help),
            _ if arg.starts_with('-') => return Err(ParseArgsError::UnknownOption(arg)),
            _ if opts.path.is_empty() => opts.path = arg,
            _ => return Err(ParseArgsError::UnexpectedArgument(arg)),
        }
    }
    if opts.path.is_empty() {
        return Err(ParseArgsError::MissingProgram);
    }
    if opts.power_out.is_some() && opts.window == 0 {
        return Err(ParseArgsError::Conflict(
            "--power-out needs power windows; drop `--window 0`",
        ));
    }
    Ok(opts)
}

fn run_functional(opts: &Options, program: &mempool_riscv::Program) -> Result<(), String> {
    use mempool::{FunctionalSim, L1Memory};
    let mut config = if opts.small {
        ClusterConfig::small(opts.topology)
    } else {
        ClusterConfig::paper(opts.topology)
    };
    if !opts.scramble {
        config.seq_region_bytes = None;
    }
    let mut sim = FunctionalSim::new(config).map_err(|e| e.to_string())?;
    sim.load_program(program).map_err(|e| e.to_string())?;
    let steps = sim.run(opts.max_cycles).map_err(|e| e.to_string())?;
    println!(
        "functional run finished in {steps} round-robin steps ({} instructions, {} cores)",
        sim.instret(),
        config.num_cores()
    );
    if sim.any_faulted() {
        println!("warning: at least one core halted on a fault");
    }
    if let Some((addr, words)) = opts.dump_mem {
        println!("\nL1 at {addr:#010x} ({words} words):");
        let dump = sim.read_words(addr, words).map_err(|e| e.to_string())?;
        for (i, w) in dump.into_iter().enumerate() {
            if i % 4 == 0 {
                print!("  {:08x}: ", addr as usize + 4 * i);
            }
            print!("{w:08x} ");
            if i % 4 == 3 {
                println!();
            }
        }
        if words % 4 != 0 {
            println!();
        }
    }
    Ok(())
}

fn parse_u32(s: &str) -> Option<u32> {
    if let Some(hex) = s.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let cmd = match parse_command(std::env::args().skip(1).collect()) {
        Ok(c) => c,
        Err((ParseArgsError::Help, usage)) => {
            println!("{usage}");
            return ExitCode::SUCCESS;
        }
        Err((e, usage)) => {
            eprintln!("error: {e}");
            eprintln!("{usage}");
            return ExitCode::from(Error::Usage(e.to_string()).exit_code());
        }
    };
    let result = match cmd {
        Command::Run { opts, legacy } => {
            if legacy {
                eprintln!(
                    "note: flat flags are deprecated; use `mempool-run run [OPTIONS] \
                     <program.s>` (or the `bench`/`campaign` subcommands)"
                );
            }
            run(&opts)
        }
        Command::Bench(opts) => run_bench_mode(&opts),
        Command::Campaign(opts) => {
            if opts.faults.is_some() {
                run_fault_campaign_mode(&opts)
            } else {
                run_campaign_mode(&opts)
            }
        }
        Command::Profile(opts) => run_profile_mode(&opts),
        Command::TrialWorker => run_trial_worker_mode(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // Print the full cause chain: the top-level category alone
            // ("simulation stopped abnormally") hides the typed cause —
            // watchdog deadlock vs cycle budget vs wall-clock timeout.
            let mut line = format!("error: {e}");
            let mut last = e.to_string();
            let mut source = std::error::Error::source(&e);
            while let Some(cause) = source {
                let text = cause.to_string();
                // Wrapper layers often re-print their inner error verbatim;
                // skip those so each chain segment adds information.
                if text != last {
                    line.push_str(&format!(": {text}"));
                    last = text;
                }
                source = cause.source();
            }
            eprintln!("{line}");
            ExitCode::from(e.exit_code())
        }
    }
}

/// Runs the benchmark matrix and writes the report; a digest divergence
/// between the serial and parallel engines is a hard error (exit 1).
fn run_bench_mode(opts: &BenchOptions) -> Result<(), Error> {
    use mempool_suite::bench::{run_bench_supervised, BenchConfig};
    let config = BenchConfig {
        cycles: opts.cycles,
        workers: opts.parallel,
        core_counts: opts.cores.clone(),
        worker_counts: opts.bench_workers.clone(),
        ..BenchConfig::default()
    };
    // SIGINT/SIGTERM stop the sweep after the point in flight; completed
    // measurements are flushed to the report instead of discarded.
    #[cfg(unix)]
    sig::install();
    #[cfg(unix)]
    let interrupt = Some(&sig::INTERRUPTED);
    #[cfg(not(unix))]
    let interrupt = None;
    let (report, interrupted) = run_bench_supervised(&config, interrupt).map_err(Error::Other)?;
    std::fs::write(&opts.out, report.to_json()).map_err(|e| Error::io(&opts.out, e))?;
    println!(
        "bench: {} points, {} digest checks -> {}",
        report.points.len(),
        report.digest_checks.len(),
        opts.out
    );
    for p in &report.points {
        println!(
            "  {:>5} {:>3} cores {:>8}: {:>12.0} sim-cycles/s ({:.2e} core-cycles/s)",
            p.topology.to_string(),
            p.cores,
            p.engine,
            p.sim_cycles_per_sec,
            p.core_cycles_per_sec
        );
    }
    if !report.digests_match() {
        for c in report.digest_checks.iter().filter(|c| !c.matches()) {
            eprintln!(
                "digest divergence: {} at {} cores after {} cycles: serial {:#018x} != parallel {:#018x}",
                c.topology, c.cores, c.cycles, c.serial_digest, c.parallel_digest
            );
        }
        return Err(Error::Other(
            "serial and parallel engines diverged".to_string(),
        ));
    }
    if interrupted {
        eprintln!(
            "bench interrupted: {} completed point(s) flushed to {}",
            report.points.len(),
            opts.out
        );
        return Err(Error::Interrupted);
    }
    Ok(())
}

/// Runs a synthetic-traffic load sweep with the observability recorder
/// attached and exports the per-point metrics registries (and optionally
/// the last point's Chrome trace).
fn run_campaign_mode(opts: &CampaignOptions) -> Result<(), Error> {
    let mut config = if opts.small {
        ClusterConfig::small(opts.topology)
    } else {
        ClusterConfig::paper(opts.topology)
    };
    if !opts.scramble {
        config.seq_region_bytes = None;
    }
    let obs = if opts.trace_out.is_some() {
        ObsConfig::with_trace(opts.trace_sample)
    } else {
        ObsConfig::histograms()
    };
    println!(
        "campaign: {} load point(s) on {} ({} cores, pattern {}, seed {})",
        opts.loads.len(),
        opts.topology,
        config.num_cores(),
        opts.pattern_label,
        opts.seed
    );
    let mut points: Vec<MeteredPoint> = Vec::with_capacity(opts.loads.len());
    for &load in &opts.loads {
        let metered = run_point_with_metrics(
            config,
            opts.pattern,
            load,
            opts.windows,
            opts.seed,
            obs,
        )?;
        let latency = metered.metrics.histogram("cluster", "latency")?;
        println!(
            "  load {:>6.3}: throughput {:>6.4}, latency mean {:>7.2} (p50 {}, p99 {}), \
             locality {:.2}",
            metered.point.offered_load,
            metered.point.throughput,
            metered.point.avg_latency(),
            latency.p50,
            latency.p99,
            metered.point.locality
        );
        points.push(metered);
    }
    if let Some(out) = &opts.metrics_json {
        let doc = campaign_json(opts, &points);
        std::fs::write(out, doc).map_err(|e| Error::io(out, e))?;
        println!("wrote campaign metrics to {out}");
    }
    if let Some(out) = &opts.trace_out {
        let trace = &points.last().expect("at least one load").timeline;
        std::fs::write(out, trace.to_chrome_json()).map_err(|e| Error::io(out, e))?;
        println!(
            "wrote timeline trace of the last point to {out} ({} spans, {} dropped)",
            trace.spans.len(),
            trace.dropped_spans
        );
    }
    Ok(())
}

/// Raw POSIX signal hookup for graceful campaign interruption. No signal
/// crate is available, so `signal(2)` is declared directly; the handler
/// only flips an atomic the executor polls between checkpoints.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Routes SIGINT and SIGTERM to the `INTERRUPTED` flag.
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

// `render_config_spec` / `parse_config_spec` moved to `mempool_traffic`
// (shared with the `mempool-serve` daemon's workers).
use mempool_traffic::{parse_config_spec, render_config_spec};

/// Runs a supervised fault-injection campaign (`campaign --faults ...`)
/// under the crash-isolated executor.
fn run_fault_campaign_mode(opts: &CampaignOptions) -> Result<(), Error> {
    let spec = opts.faults.expect("caller checked --faults");
    let manifest = opts.manifest.as_deref().expect("parser required --manifest");
    let config = parse_config_spec(&render_config_spec(opts.topology, opts.small, opts.scramble))
        .map_err(Error::Other)?;
    let campaign = mempool_traffic::CampaignConfig {
        load: opts.load,
        pattern: opts.pattern,
        windows: opts.windows,
        spec,
        trials: opts.trials,
        base_seed: opts.seed,
    };
    let exec = ExecutorConfig {
        deadline: opts.deadline_secs.map(Duration::from_secs),
        cycle_budget: opts.cycle_budget,
        max_attempts: opts.max_attempts,
        backoff_base_ms: opts.backoff_ms,
        checkpoint_every: opts.checkpoint_every,
        isolate: opts.isolate,
        config_spec: render_config_spec(opts.topology, opts.small, opts.scramble),
        sanitize: opts.sanitize.then(SanitizerConfig::default),
        ..ExecutorConfig::default()
    };
    println!(
        "fault campaign: {} trial(s) on {} ({} cores), spec [{spec}], seed {}{}",
        opts.trials,
        opts.topology,
        config.num_cores(),
        opts.seed,
        match opts.isolate {
            Some(n) => format!(", {n} isolated worker(s)"),
            None => String::new(),
        }
    );
    #[cfg(unix)]
    sig::install();
    #[cfg(unix)]
    let interrupt = Some(&sig::INTERRUPTED);
    #[cfg(not(unix))]
    let interrupt = None;
    let executor = Executor::new(config, campaign, exec);
    let report = executor.run(std::path::Path::new(manifest), interrupt)?;
    println!(
        "{} ({} resumed, {} new, {} retried attempt(s))",
        report.report.summary(),
        report.resumed_trials,
        report.new_trials,
        report.retries
    );
    for q in &report.quarantined {
        println!("quarantined seed {} after {} attempt(s):", q.seed, q.failures.len());
        for f in &q.failures {
            println!("  attempt {}: {} — {}", f.attempt, f.kind, f.detail);
        }
    }
    if let Some(out) = &opts.json_out {
        std::fs::write(out, report.report.to_json()).map_err(|e| Error::io(out, e))?;
        println!("wrote campaign report to {out}");
    }
    if report.interrupted {
        return Err(Error::Interrupted);
    }
    Ok(())
}

/// The hidden `trial-worker` subcommand: reads one JSON job spec line from
/// stdin, runs the trial, and reports over stdout (see the executor's
/// worker protocol). Errors also go to stdout as `error ...` lines so the
/// parent can attach a reason to the failure it classifies.
fn run_trial_worker_mode() -> Result<(), Error> {
    use std::io::BufRead as _;
    let mut line = String::new();
    std::io::stdin()
        .lock()
        .read_line(&mut line)
        .map_err(|e| Error::io("<stdin>", e))?;
    let job = match WorkerJob::from_json(&line) {
        Ok(job) => job,
        Err(e) => {
            println!("error {e}");
            return Err(Error::Other(e.to_owned()));
        }
    };
    let config = match parse_config_spec(&job.config_spec) {
        Ok(config) => config,
        Err(e) => {
            println!("error {e}");
            return Err(Error::Other(e));
        }
    };
    run_trial_worker(config, &job).map_err(|e| {
        println!("error {e}");
        Error::Campaign(e)
    })
}

/// Renders the campaign report: sweep aggregates per point plus the full
/// embedded `mempool-metrics-v1` registry of each run.
fn campaign_json(opts: &CampaignOptions, points: &[MeteredPoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"mempool-campaign-metrics-v1\",");
    let _ = writeln!(out, "  \"topology\": \"{}\",", opts.topology);
    let _ = writeln!(out, "  \"pattern\": \"{}\",", opts.pattern_label);
    let _ = writeln!(out, "  \"seed\": {},", opts.seed);
    let _ = writeln!(
        out,
        "  \"windows\": {{ \"warmup\": {}, \"measure\": {}, \"drain\": {} }},",
        opts.windows.warmup, opts.windows.measure, opts.windows.drain
    );
    out.push_str("  \"points\": [\n");
    for (i, m) in points.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"offered_load\": {:.6},", m.point.offered_load);
        let _ = writeln!(out, "      \"throughput\": {:.6},", m.point.throughput);
        let _ = writeln!(out, "      \"latency_mean\": {:.6},", m.point.avg_latency());
        let _ = writeln!(out, "      \"locality\": {:.6},", m.point.locality);
        let _ = writeln!(out, "      \"net_occupancy\": {:.6},", m.point.net_occupancy);
        // The metrics registry renders itself as a complete JSON object;
        // embed it verbatim (indentation differs, validity does not).
        let _ = writeln!(out, "      \"metrics\": {}", m.metrics.to_json().trim_end());
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Operating frequency used to price power timelines — the 500 MHz point
/// of §VI-D, where the paper reports 20.9 mW/tile and 1.55 W per cluster.
const POWER_FREQ_MHZ: f64 = 500.0;

/// Runs one program under the profiler and prints the per-region
/// cycle/stall breakdown plus the hottest PCs; optionally exports the
/// folded-stack profile and the `mempool-power-v1` timeline.
fn run_profile_mode(opts: &ProfileOptions) -> Result<(), Error> {
    use mempool_snitch::profile::{stall_name, PcCounters, REGION_NAMES, STALL_CAUSES};

    let mut config = if opts.small {
        ClusterConfig::small(opts.topology)
    } else {
        ClusterConfig::paper(opts.topology)
    };
    if !opts.scramble {
        config.seq_region_bytes = None;
    }
    let source = std::fs::read_to_string(&opts.path).map_err(|e| Error::io(&opts.path, e))?;
    let program = assemble(&source).map_err(|e| Error::Asm {
        path: opts.path.clone(),
        source: e,
    })?;
    let mut session = SimSession::builder(config)
        .workers(opts.parallel)
        .profile(ProfileConfig {
            max_pcs: opts.max_pcs,
            power_window: opts.window,
        })
        .build_snitch()?;
    session.load_program(&program)?;
    let cycles = session.run(opts.max_cycles)?;

    let cluster = session.cluster();
    let cores = cluster.core_stats_total();
    println!(
        "profiled {} on {} ({} cores): {cycles} cycles, {} instructions",
        opts.path,
        opts.topology,
        config.num_cores(),
        cores.instret
    );

    let regions = cluster.region_profile().expect("profiling was enabled");
    let attributed: u64 = regions.iter().map(|r| r.cycles()).sum();
    println!("\nregion breakdown (core-cycles, summed over all cores):");
    println!(
        "  {:<10} {:>14} {:>14} {:>14} {:>7}  top stall",
        "region", "cycles", "retired", "stalled", "share"
    );
    for (slot, r) in regions.iter().enumerate() {
        if r.cycles() == 0 {
            continue;
        }
        let top_stall = STALL_CAUSES
            .iter()
            .zip(&r.stalls)
            .max_by_key(|(_, &n)| n)
            .filter(|(_, &n)| n > 0)
            .map(|(&cause, &n)| format!("{} ({n})", stall_name(cause)))
            .unwrap_or_else(|| "-".to_owned());
        println!(
            "  {:<10} {:>14} {:>14} {:>14} {:>6.1}%  {top_stall}",
            REGION_NAMES[slot],
            r.cycles(),
            r.retired,
            r.stall_cycles(),
            100.0 * r.cycles() as f64 / attributed.max(1) as f64,
        );
    }

    // Hottest PCs: the per-(region, PC) counters summed across all cores.
    let mut by_pc: std::collections::BTreeMap<(u32, u32), PcCounters> =
        std::collections::BTreeMap::new();
    for core in cluster.cores() {
        let profile = core.profile().expect("profiling was enabled");
        for (region, pc, c) in profile.pcs() {
            let agg = by_pc.entry((region, pc)).or_default();
            agg.retired += c.retired;
            for (acc, &s) in agg.stalls.iter_mut().zip(&c.stalls) {
                *acc += s;
            }
        }
    }
    let mut hottest: Vec<_> = by_pc.into_iter().collect();
    hottest.sort_by(|a, b| b.1.cycles().cmp(&a.1.cycles()).then(a.0.cmp(&b.0)));
    if opts.top > 0 && !hottest.is_empty() {
        println!("\nhottest PCs:");
        println!(
            "  {:>10} {:<10} {:>14} {:>14}  top stall",
            "pc", "region", "cycles", "stalled"
        );
        for ((region, pc), c) in hottest.iter().take(opts.top) {
            let top_stall = STALL_CAUSES
                .iter()
                .zip(&c.stalls)
                .max_by_key(|(_, &n)| n)
                .filter(|(_, &n)| n > 0)
                .map(|(&cause, &n)| format!("{} ({n})", stall_name(cause)))
                .unwrap_or_else(|| "-".to_owned());
            println!(
                "  {pc:#010x} {:<10} {:>14} {:>14}  {top_stall}",
                REGION_NAMES[*region as usize],
                c.cycles(),
                c.stall_cycles(),
            );
        }
    }

    if let Some(out) = &opts.out {
        let folded = session.profile_folded().expect("profiling was enabled");
        std::fs::write(out, folded).map_err(|e| Error::io(out, e))?;
        println!("\nwrote folded-stack profile to {out}");
    }
    if let Some(out) = &opts.power_out {
        let windows = session.power_windows().expect("profiling was enabled");
        let doc = mempool_physical::power_timeline_json(
            &windows,
            config.cores_per_tile,
            config.banks_per_tile,
            POWER_FREQ_MHZ,
        );
        std::fs::write(out, doc).map_err(|e| Error::io(out, e))?;
        println!("wrote power timeline to {out} ({} windows)", windows.len());
    }
    Ok(())
}

fn run(opts: &Options) -> Result<(), Error> {
    if let Some(out) = &opts.bench_json {
        return run_bench_mode(&BenchOptions {
            out: out.clone(),
            cores: opts.bench_cores.clone(),
            cycles: opts.bench_cycles,
            parallel: opts.parallel,
            bench_workers: Vec::new(),
        });
    }
    let mut config = if opts.small {
        ClusterConfig::small(opts.topology)
    } else {
        ClusterConfig::paper(opts.topology)
    };
    if !opts.scramble {
        config.seq_region_bytes = None;
    }
    if opts.describe {
        let session = SimSession::builder(config).build_snitch()?;
        print!("{}", session.cluster().describe());
        return Ok(());
    }
    let source = std::fs::read_to_string(&opts.path).map_err(|e| Error::io(&opts.path, e))?;
    let program = assemble(&source).map_err(|e| Error::Asm {
        path: opts.path.clone(),
        source: e,
    })?;

    if opts.listing {
        print!("{}", program.listing());
        return Ok(());
    }
    if let Some(out) = &opts.emit_bin {
        let bytes: Vec<u8> = program
            .words()
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        std::fs::write(out, &bytes).map_err(|e| Error::io(out, e))?;
        println!("wrote {} bytes to {out}", bytes.len());
        return Ok(());
    }

    if opts.functional {
        run_functional(opts, &program)?;
        return Ok(());
    }
    if opts.faults.is_some() {
        config.resilience = ResilienceConfig::standard();
    }
    let mut builder = SimSession::builder(config).workers(opts.parallel);
    if let Some(spec) = opts.faults {
        if !opts.json {
            println!("fault injection: {spec} (seed {})", opts.seed);
        }
        builder = builder.fault_plan(FaultPlan::new(opts.seed, spec));
    }
    if opts.metrics_json.is_some() || opts.trace_out.is_some() {
        builder = builder.observability(if opts.trace_out.is_some() {
            ObsConfig::with_trace(opts.trace_sample)
        } else {
            ObsConfig::histograms()
        });
    }
    if opts.profile_out.is_some() || opts.power_out.is_some() {
        builder = builder.profile(if opts.power_out.is_some() {
            ProfileConfig::default()
        } else {
            ProfileConfig::attribution_only()
        });
    }
    if opts.checkpoint_every > 0 {
        let path = opts
            .checkpoint_file
            .clone()
            .unwrap_or_else(|| format!("{}.ckpt", opts.path));
        builder = builder.checkpoint_every(opts.checkpoint_every, path);
    }
    if let Some(secs) = opts.max_wall_secs {
        builder = builder.max_wall(Duration::from_secs(secs));
    }
    if opts.sanitize {
        builder = builder.sanitize(SanitizerConfig::default());
    }
    let mut session = builder.build_snitch()?;
    session.load_program(&program)?;
    if let Some(core) = opts.trace_core {
        session
            .cluster_mut()
            .cores_mut()
            .get_mut(core)
            .ok_or_else(|| Error::Other(format!("core {core} out of range")))?
            .enable_trace(32);
    }
    if let Some(from) = &opts.resume {
        let snap = ClusterSnapshot::read_file(std::path::Path::new(from))
            .map_err(|e| Error::Other(format!("{from}: {e}")))?;
        session
            .restore(&snap)
            .map_err(|e| Error::Other(format!("{from}: {e}")))?;
        if !opts.json {
            println!(
                "resumed from {from} at cycle {} (state digest {:#018x})",
                snap.cycle(),
                snap.state_digest()
            );
        }
    }

    let cycles = session.run(opts.max_cycles)?;

    if opts.sanitize {
        let report = session
            .cluster()
            .sanitizer_report()
            .expect("sanitizer was enabled");
        if !report.is_clean() {
            for v in &report.violations {
                eprintln!("sanitizer: {v}");
            }
            return Err(Error::Other(format!(
                "sanitizer recorded {} violation(s) over {} cycle(s)",
                report.total_violations(),
                report.cycles_checked
            )));
        }
        if !opts.json {
            println!(
                "sanitizer: clean ({} cycles checked, {} completions)",
                report.cycles_checked, report.completions
            );
        }
    }

    if let Some(out) = &opts.metrics_json {
        std::fs::write(out, session.metrics_registry().to_json())
            .map_err(|e| Error::io(out, e))?;
        if !opts.json {
            println!("wrote metrics to {out}");
        }
    }
    if let Some(out) = &opts.trace_out {
        let trace = session.timeline().expect("observability was enabled");
        std::fs::write(out, trace.to_chrome_json()).map_err(|e| Error::io(out, e))?;
        if !opts.json {
            println!(
                "wrote timeline trace to {out} ({} spans, {} dropped)",
                trace.spans.len(),
                trace.dropped_spans
            );
        }
    }
    if let Some(out) = &opts.profile_out {
        let folded = session.profile_folded().expect("profiling was enabled");
        std::fs::write(out, folded).map_err(|e| Error::io(out, e))?;
        if !opts.json {
            println!("wrote folded-stack profile to {out}");
        }
    }
    if let Some(out) = &opts.power_out {
        let windows = session.power_windows().expect("profiling was enabled");
        let doc = mempool_physical::power_timeline_json(
            &windows,
            config.cores_per_tile,
            config.banks_per_tile,
            POWER_FREQ_MHZ,
        );
        std::fs::write(out, doc).map_err(|e| Error::io(out, e))?;
        if !opts.json {
            println!("wrote power timeline to {out} ({} windows)", windows.len());
        }
    }

    let cluster = session.cluster_mut();
    if opts.json {
        print_json(cluster, cycles);
        return Ok(());
    }
    let stats = cluster.stats();
    let cores = cluster.core_stats_total();
    println!(
        "finished in {cycles} cycles on {} ({} cores, scrambling {})",
        opts.topology,
        config.num_cores(),
        if opts.scramble { "on" } else { "off" }
    );
    println!(
        "instructions: {} ({:.3} IPC/core), memory: {} requests, {:.1} % local, \
         latency mean {:.2}",
        cores.instret,
        cores.instret as f64 / (cycles.max(1) as f64 * config.num_cores() as f64),
        stats.requests_issued,
        100.0 * stats.locality(),
        stats.latency.mean()
    );
    let faulted = cluster.cores().iter().filter(|c| c.faulted()).count();
    if faulted > 0 {
        println!("warning: {faulted} core(s) halted on a fault");
    }
    if opts.faults.is_some() {
        println!("fault counters: {}", stats.faults);
        println!(
            "quarantined banks: {}, fault log: {} event(s) ({} dropped)",
            cluster.quarantined_banks(),
            cluster.fault_log().len(),
            cluster.fault_log().dropped()
        );
        for event in cluster.fault_log().events() {
            println!("  {event}");
        }
    }

    if let Some(core) = opts.dump_regs {
        let core_ref = cluster
            .cores()
            .get(core)
            .ok_or_else(|| Error::Other(format!("core {core} out of range")))?;
        println!("\ncore {core} registers (pc={:#010x}):", core_ref.pc());
        for reg in Reg::all() {
            print!("  {:>4}={:08x}", reg.abi_name(), core_ref.reg(reg));
            if (reg.index() + 1) % 4 == 0 {
                println!();
            }
        }
    }
    if let Some(core) = opts.trace_core {
        println!("\ncore {core} retirement trace (last 32):");
        for entry in cluster.cores()[core].trace() {
            println!("  cycle {:>8}  {:08x}:  {}", entry.cycle, entry.pc, entry.instr);
        }
    }
    if let Some((addr, words)) = opts.dump_mem {
        println!("\nL1 at {addr:#010x} ({words} words):");
        let dump = cluster
            .read_words(addr, words)
            .map_err(|e| Error::Other(e.to_string()))?;
        for (i, w) in dump.into_iter().enumerate() {
            if i % 4 == 0 {
                print!("  {:08x}: ", addr as usize + 4 * i);
            }
            print!("{w:08x} ");
            if i % 4 == 3 {
                println!();
            }
        }
        if words % 4 != 0 {
            println!();
        }
    }
    Ok(())
}

/// Machine-readable result record. `state_digest` is the canonical digest
/// over the complete architectural state (see DESIGN.md §9) — two runs of
/// the same program with the same seeds must print the same value.
fn print_json(cluster: &mempool::Cluster<mempool_snitch::SnitchCore>, run_cycles: u64) {
    let stats = cluster.stats();
    let cores = cluster.core_stats_total();
    let f = &stats.faults;
    let faulted = cluster.cores().iter().filter(|c| c.faulted()).count();
    println!("{{");
    println!("  \"cycles\": {},", cluster.now());
    println!("  \"run_cycles\": {run_cycles},");
    println!("  \"instret\": {},", cores.instret);
    println!("  \"state_digest\": \"{:#018x}\",", cluster.state_digest());
    println!("  \"l1_digest\": \"{:#018x}\",", cluster.l1_digest());
    println!("  \"requests_issued\": {},", stats.requests_issued);
    println!("  \"responses_delivered\": {},", stats.responses_delivered);
    println!("  \"latency_mean\": {:.6},", stats.latency.mean());
    println!("  \"faulted_cores\": {faulted},");
    println!("  \"quarantined_banks\": {},", cluster.quarantined_banks());
    println!("  \"faults\": {{");
    println!("    \"injected\": {},", f.total_injected());
    println!("    \"banks_failed\": {},", f.banks_failed);
    println!("    \"link_drops\": {},", f.link_drops);
    println!("    \"link_corruptions\": {},", f.link_corruptions);
    println!("    \"core_lockups\": {},", f.core_lockups);
    println!("    \"request_retries\": {},", f.request_retries);
    println!("    \"requests_abandoned\": {}", f.requests_abandoned);
    println!("  }}");
    println!("}}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Options, ParseArgsError> {
        parse_args(list.iter().map(|s| s.to_string()))
    }

    fn command(list: &[&str]) -> Result<Command, (ParseArgsError, &'static str)> {
        parse_command(list.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn defaults_and_flags() {
        let o = args(&["prog.s"]).unwrap();
        assert_eq!(o.topology, Topology::TopH);
        assert!(o.scramble && !o.small && !o.functional);
        assert_eq!(o.path, "prog.s");

        let o = args(&[
            "--topology", "top1", "--small", "--no-scramble", "--max-cycles", "123",
            "--dump-regs", "7", "--dump-mem", "0x100:8", "--trace-core", "3",
            "--functional", "p.s",
        ])
        .unwrap();
        assert_eq!(o.topology, Topology::Top1);
        assert!(o.small && !o.scramble && o.functional);
        assert_eq!(o.max_cycles, 123);
        assert_eq!(o.dump_regs, Some(7));
        assert_eq!(o.dump_mem, Some((0x100, 8)));
        assert_eq!(o.trace_core, Some(3));
    }

    #[test]
    fn subcommand_dispatch() {
        // `run` and the legacy flat form parse to the same options.
        let Command::Run { opts, legacy } = command(&["run", "--small", "p.s"]).unwrap() else {
            panic!("expected run")
        };
        assert!(!legacy);
        assert!(opts.small);
        assert_eq!(opts.path, "p.s");
        let Command::Run { opts, legacy } = command(&["--small", "p.s"]).unwrap() else {
            panic!("expected legacy run")
        };
        assert!(legacy);
        assert!(opts.small);

        let Command::Bench(b) = command(&["bench", "--out", "o.json", "--cores", "16"]).unwrap()
        else {
            panic!("expected bench")
        };
        assert_eq!(
            b,
            BenchOptions {
                out: "o.json".to_owned(),
                cores: vec![16],
                cycles: 2_000,
                parallel: 0,
                bench_workers: vec![],
            }
        );
        let Command::Bench(b) =
            command(&["bench", "--out", "o.json", "--bench-workers", "2,4,8"]).unwrap()
        else {
            panic!("expected bench")
        };
        assert_eq!(b.bench_workers, vec![2, 4, 8]);
        assert!(matches!(
            command(&["bench", "--out", "o.json", "--bench-workers", "2,0"]),
            Err((ParseArgsError::InvalidValue { option: "--bench-workers", .. }, _))
        ));
        // --metrics-json is the shared spelling of the output flag.
        let Command::Bench(b) = command(&["bench", "--metrics-json", "m.json"]).unwrap() else {
            panic!("expected bench")
        };
        assert_eq!(b.out, "m.json");
        assert!(matches!(
            command(&["bench"]),
            Err((ParseArgsError::MissingOption("--out"), _))
        ));

        let Command::Campaign(c) = command(&[
            "campaign", "--small", "--pattern", "plocal=0.8", "--loads", "0.05,0.1",
            "--measure", "4000", "--metrics-json", "m.json",
        ])
        .unwrap() else {
            panic!("expected campaign")
        };
        assert!(c.small);
        assert_eq!(c.pattern, Pattern::PLocal { p_local: 0.8 });
        assert_eq!(c.loads, vec![0.05, 0.1]);
        assert_eq!(c.windows.measure, 4_000);
        assert_eq!(c.metrics_json.as_deref(), Some("m.json"));

        // Subcommand parse errors carry the matching usage text.
        let (e, usage) = command(&["campaign", "--pattern", "mesh"]).unwrap_err();
        assert!(matches!(e, ParseArgsError::InvalidValue { option: "--pattern", .. }));
        assert!(usage.contains("campaign"));
    }

    #[test]
    fn campaign_rejections() {
        assert!(matches!(
            command(&["campaign", "--loads", "0.0,0.1"]),
            Err((ParseArgsError::InvalidValue { option: "--loads", .. }, _))
        ));
        assert!(matches!(
            command(&["campaign", "--pattern", "plocal=1.5"]),
            Err((ParseArgsError::InvalidValue { option: "--pattern", .. }, _))
        ));
        assert!(matches!(
            command(&["campaign", "--trace-sample", "0"]),
            Err((ParseArgsError::InvalidValue { option: "--trace-sample", .. }, _))
        ));
        assert!(matches!(
            command(&["campaign", "extra.s"]),
            Err((ParseArgsError::UnexpectedArgument(_), _))
        ));
    }

    #[test]
    fn metrics_and_trace_flags() {
        let o = args(&["--metrics-json", "m.json", "--trace-out", "t.json", "p.s"]).unwrap();
        assert_eq!(o.metrics_json.as_deref(), Some("m.json"));
        assert_eq!(o.trace_out.as_deref(), Some("t.json"));
        assert_eq!(o.trace_sample, 64);
        let o = args(&["--trace-out", "t.json", "--trace-sample", "8", "p.s"]).unwrap();
        assert_eq!(o.trace_sample, 8);

        assert!(matches!(
            args(&["--trace-sample", "0", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--trace-sample", .. })
        ));
        assert!(matches!(
            args(&["--functional", "--metrics-json", "m.json", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--bench-json", "o.json", "--metrics-json", "m.json"]),
            Err(ParseArgsError::Conflict(_))
        ));
    }

    #[test]
    fn trace_sample_requires_trace_out() {
        // Regression: a lone --trace-sample used to parse fine and then be
        // silently ignored; it is a typed usage error (exit 2) now.
        assert_eq!(
            args(&["--trace-sample", "8", "p.s"]).unwrap_err(),
            ParseArgsError::Conflict("--trace-sample only applies to --trace-out")
        );
        assert!(matches!(
            command(&["campaign", "--trace-sample", "8"]),
            Err((ParseArgsError::Conflict(_), CAMPAIGN_USAGE))
        ));
        // With --trace-out the interval is accepted as before.
        assert!(args(&["--trace-out", "t.json", "--trace-sample", "8", "p.s"]).is_ok());
        assert!(command(&["campaign", "--trace-out", "t.json", "--trace-sample", "8"]).is_ok());
    }

    #[test]
    fn profile_flags_on_run() {
        let o = args(&["--profile-out", "f.folded", "--power-out", "p.json", "p.s"]).unwrap();
        assert_eq!(o.profile_out.as_deref(), Some("f.folded"));
        assert_eq!(o.power_out.as_deref(), Some("p.json"));

        assert!(matches!(
            args(&["--functional", "--profile-out", "f.folded", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--bench-json", "o.json", "--power-out", "p.json"]),
            Err(ParseArgsError::Conflict(_))
        ));
    }

    #[test]
    fn profile_subcommand() {
        let Command::Profile(p) = command(&[
            "profile", "--small", "--max-pcs", "256", "--window", "512", "--top", "5",
            "--out", "f.folded", "--power-out", "p.json", "prog.s",
        ])
        .unwrap() else {
            panic!("expected profile")
        };
        assert_eq!(
            p,
            ProfileOptions {
                topology: Topology::TopH,
                small: true,
                scramble: true,
                max_cycles: 100_000_000,
                parallel: 0,
                max_pcs: 256,
                window: 512,
                top: 5,
                out: Some("f.folded".to_owned()),
                power_out: Some("p.json".to_owned()),
                path: "prog.s".to_owned(),
            }
        );

        assert!(matches!(
            command(&["profile"]),
            Err((ParseArgsError::MissingProgram, PROFILE_USAGE))
        ));
        assert!(matches!(
            command(&["profile", "--max-pcs", "0", "p.s"]),
            Err((ParseArgsError::InvalidValue { option: "--max-pcs", .. }, _))
        ));
        assert!(matches!(
            command(&["profile", "--window", "0", "--power-out", "p.json", "p.s"]),
            Err((ParseArgsError::Conflict(_), _))
        ));
        assert!(matches!(
            command(&["profile", "--help"]),
            Err((ParseArgsError::Help, PROFILE_USAGE))
        ));
    }

    #[test]
    fn parallel_and_bench_flags() {
        let o = args(&["--parallel", "8", "p.s"]).unwrap();
        assert_eq!(o.parallel, 8);
        assert!(o.bench_json.is_none());

        // Bench mode needs no program path and carries its own knobs.
        let o = args(&[
            "--bench-json", "out.json", "--bench-cores", "16", "--bench-cycles", "500",
            "--parallel", "4",
        ])
        .unwrap();
        assert_eq!(o.bench_json.as_deref(), Some("out.json"));
        assert_eq!(o.bench_cores, vec![16]);
        assert_eq!(o.bench_cycles, 500);
        assert_eq!(o.parallel, 4);
        let o = args(&["--bench-json", "out.json", "--bench-cores", "all"]).unwrap();
        assert_eq!(o.bench_cores, vec![16, 256]);

        assert!(matches!(
            args(&["--parallel", "lots", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--parallel", .. })
        ));
        assert!(matches!(
            args(&["--bench-cores", "12", "--bench-json", "o.json"]),
            Err(ParseArgsError::InvalidValue { option: "--bench-cores", .. })
        ));
        assert!(matches!(
            args(&["--bench-cycles", "0", "--bench-json", "o.json"]),
            Err(ParseArgsError::InvalidValue { option: "--bench-cycles", .. })
        ));
        // Conflicts are typed, not silently ignored.
        assert!(matches!(
            args(&["--bench-json", "o.json", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--bench-json", "o.json", "--functional"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--bench-json", "o.json", "--json"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--bench-json", "o.json", "--faults", "bank_fail=1"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--functional", "--parallel", "2", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
    }

    #[test]
    fn rejections_are_typed() {
        assert_eq!(args(&[]).unwrap_err(), ParseArgsError::MissingProgram);
        assert!(matches!(
            args(&["--topology", "mesh", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--topology", .. })
        ));
        assert!(matches!(
            args(&["--dump-mem", "100", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--dump-mem", .. })
        ));
        assert!(matches!(
            args(&["--max-cycles", "many", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--max-cycles", .. })
        ));
        assert_eq!(
            args(&["--bogus", "p.s"]).unwrap_err(),
            ParseArgsError::UnknownOption("--bogus".to_owned())
        );
        assert!(matches!(
            args(&["--faults", "warp_core=0.5", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--faults", .. })
        ));
        assert!(matches!(
            args(&["--seed", "abc", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--seed", .. })
        ));
        assert_eq!(
            args(&["--seed"]).unwrap_err(),
            ParseArgsError::MissingValue("--seed")
        );
        assert_eq!(
            args(&["a.s", "b.s"]).unwrap_err(),
            ParseArgsError::UnexpectedArgument("b.s".to_owned())
        );
    }

    #[test]
    fn help_is_not_an_error_case() {
        assert_eq!(args(&["--help"]).unwrap_err(), ParseArgsError::Help);
        assert_eq!(args(&["-h", "p.s"]).unwrap_err(), ParseArgsError::Help);
        // Each subcommand answers --help with its own usage text.
        assert!(matches!(
            command(&["bench", "--help"]),
            Err((ParseArgsError::Help, BENCH_USAGE))
        ));
        assert!(matches!(
            command(&["campaign", "-h"]),
            Err((ParseArgsError::Help, CAMPAIGN_USAGE))
        ));
        assert!(matches!(
            command(&["run", "--help"]),
            Err((ParseArgsError::Help, USAGE))
        ));
    }

    #[test]
    fn checkpoint_flags() {
        let o = args(&[
            "--checkpoint-every", "5000", "--checkpoint-file", "run.ckpt", "p.s",
        ])
        .unwrap();
        assert_eq!(o.checkpoint_every, 5000);
        assert_eq!(o.checkpoint_file.as_deref(), Some("run.ckpt"));

        let o = args(&["--resume", "run.ckpt", "--json", "p.s"]).unwrap();
        assert_eq!(o.resume.as_deref(), Some("run.ckpt"));
        assert!(o.json);

        assert!(matches!(
            args(&["--checkpoint-every", "0", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--checkpoint-every", .. })
        ));
    }

    #[test]
    fn functional_conflicts() {
        assert!(matches!(
            args(&["--functional", "--faults", "bank_fail=1", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--functional", "--checkpoint-every", "100", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--functional", "--resume", "x.ckpt", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--functional", "--json", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--json", "--dump-regs", "0", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
    }

    #[test]
    fn fault_flags() {
        let o = args(&["--faults", "bank_fail=2,link_stall=0.01", "--seed", "42", "p.s"]).unwrap();
        let spec = o.faults.expect("spec parsed");
        assert_eq!(spec.bank_fail, 2);
        assert_eq!(spec.link_stall, 0.01);
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn hex_and_decimal_addresses() {
        assert_eq!(parse_u32("0x20"), Some(0x20));
        assert_eq!(parse_u32("32"), Some(32));
        assert_eq!(parse_u32("zz"), None);
    }

    #[test]
    fn supervision_flags_on_run() {
        let o = args(&["--max-wall-secs", "30", "--sanitize", "p.s"]).unwrap();
        assert_eq!(o.max_wall_secs, Some(30));
        assert!(o.sanitize);

        assert!(matches!(
            args(&["--max-wall-secs", "0", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--max-wall-secs", .. })
        ));
        // Both are cycle-accurate-only features.
        assert!(matches!(
            args(&["--functional", "--max-wall-secs", "5", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--functional", "--sanitize", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
    }

    #[test]
    fn fault_campaign_flags() {
        let Command::Campaign(c) = command(&[
            "campaign", "--small", "--topology", "top1", "--faults", "bank_fail=1",
            "--manifest", "m.txt", "--trials", "5", "--load", "0.1",
            "--deadline-secs", "30", "--cycle-budget", "200000", "--max-attempts", "4",
            "--backoff-ms", "10", "--checkpoint-every", "128", "--isolate=3",
            "--sanitize", "--json-out", "r.json",
        ])
        .unwrap() else {
            panic!("expected campaign")
        };
        assert_eq!(c.faults.expect("spec parsed").bank_fail, 1);
        assert_eq!(c.manifest.as_deref(), Some("m.txt"));
        assert_eq!(c.trials, 5);
        assert_eq!(c.load, 0.1);
        assert_eq!(c.deadline_secs, Some(30));
        assert_eq!(c.cycle_budget, Some(200_000));
        assert_eq!(c.max_attempts, 4);
        assert_eq!(c.backoff_ms, 10);
        assert_eq!(c.checkpoint_every, 128);
        assert_eq!(c.isolate, Some(3));
        assert!(c.sanitize);
        assert_eq!(c.json_out.as_deref(), Some("r.json"));

        // Bare --isolate means one worker.
        let Command::Campaign(c) =
            command(&["campaign", "--faults", "bank_fail=1", "--manifest", "m", "--isolate"])
                .unwrap()
        else {
            panic!("expected campaign")
        };
        assert_eq!(c.isolate, Some(1));

        // The hidden worker subcommand dispatches.
        assert!(matches!(command(&["trial-worker"]), Ok(Command::TrialWorker)));
    }

    #[test]
    fn fault_campaign_rejections() {
        // The manifest is the campaign's single source of truth.
        assert!(matches!(
            command(&["campaign", "--faults", "bank_fail=1"]),
            Err((ParseArgsError::MissingOption("--manifest"), CAMPAIGN_USAGE))
        ));
        // Executor flags without --faults are typed conflicts, not silently
        // ignored knobs.
        for flags in [
            &["campaign", "--trials", "4"][..],
            &["campaign", "--manifest", "m"][..],
            &["campaign", "--isolate"][..],
            &["campaign", "--json-out", "r.json"][..],
            &["campaign", "--cycle-budget", "100"][..],
        ] {
            assert!(
                matches!(command(flags), Err((ParseArgsError::Conflict(_), _))),
                "{flags:?} must be rejected without --faults"
            );
        }
        // Sweep exports don't mix with the executor.
        assert!(matches!(
            command(&[
                "campaign", "--faults", "bank_fail=1", "--manifest", "m",
                "--metrics-json", "m.json",
            ]),
            Err((ParseArgsError::Conflict(_), _))
        ));
        assert!(matches!(
            command(&["campaign", "--faults", "bank_fail=1", "--manifest", "m", "--isolate=0"]),
            Err((ParseArgsError::InvalidValue { option: "--isolate", .. }, _))
        ));
    }
}
