//! `mempool-run` — assemble an RV32IMA source file and execute it on the
//! cycle-accurate MemPool cluster.
//!
//! ```console
//! $ mempool-run program.s                        # 256 cores, TopH
//! $ mempool-run --topology top1 --small prog.s  # 64 cores, Top1
//! $ mempool-run --no-scramble --dump-mem 0x40000:8 prog.s
//! ```

use mempool::{Cluster, ClusterConfig, FaultPlan, FaultSpec, ResilienceConfig, Topology};
use mempool_riscv::{assemble, Reg};
use std::process::ExitCode;

struct Options {
    topology: Topology,
    small: bool,
    scramble: bool,
    max_cycles: u64,
    dump_regs: Option<usize>,
    dump_mem: Option<(u32, usize)>,
    trace_core: Option<usize>,
    functional: bool,
    listing: bool,
    emit_bin: Option<String>,
    describe: bool,
    faults: Option<FaultSpec>,
    seed: u64,
    path: String,
}

const USAGE: &str = "usage: mempool-run [OPTIONS] <program.s>

options:
  --topology <top1|top4|topH|ideal>  interconnect topology (default topH)
  --small                            64-core cluster instead of 256
  --no-scramble                      disable the hybrid addressing scheme
  --max-cycles <n>                   cycle budget (default 100000000)
  --dump-regs <core>                 print core's registers after the run
  --dump-mem <addr>:<words>          print an L1 region after the run
  --trace-core <core>                print the core's last 32 retired instructions
  --functional                       run on the untimed reference simulator
  --listing                          print the assembled program and exit
  --emit-bin <file>                  write the assembled image (LE words) and exit
  --describe                         print the instantiated hardware and exit
  --faults <spec>                    inject faults: key=value pairs, e.g.
                                     bank_fail=2,link_stall=0.01 (see FaultSpec)
  --seed <n>                         fault-injection seed (default 0)
  --help                             this text";

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        topology: Topology::TopH,
        small: false,
        scramble: true,
        max_cycles: 100_000_000,
        dump_regs: None,
        dump_mem: None,
        trace_core: None,
        functional: false,
        listing: false,
        emit_bin: None,
        describe: false,
        faults: None,
        seed: 0,
        path: String::new(),
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match arg.as_str() {
            "--topology" => {
                opts.topology = match value("--topology")?.as_str() {
                    "top1" => Topology::Top1,
                    "top4" => Topology::Top4,
                    "topH" | "toph" => Topology::TopH,
                    "ideal" => Topology::Ideal,
                    other => return Err(format!("unknown topology `{other}`")),
                };
            }
            "--small" => opts.small = true,
            "--no-scramble" => opts.scramble = false,
            "--max-cycles" => {
                opts.max_cycles = value("--max-cycles")?
                    .parse()
                    .map_err(|_| "invalid --max-cycles value".to_owned())?;
            }
            "--dump-regs" => {
                opts.dump_regs = Some(
                    value("--dump-regs")?
                        .parse()
                        .map_err(|_| "invalid --dump-regs core index".to_owned())?,
                );
            }
            "--dump-mem" => {
                let spec = value("--dump-mem")?;
                let (addr, words) = spec
                    .split_once(':')
                    .ok_or("expected --dump-mem <addr>:<words>")?;
                let addr = parse_u32(addr).ok_or("invalid --dump-mem address")?;
                let words = words.parse().map_err(|_| "invalid --dump-mem word count")?;
                opts.dump_mem = Some((addr, words));
            }
            "--trace-core" => {
                opts.trace_core = Some(
                    value("--trace-core")?
                        .parse()
                        .map_err(|_| "invalid --trace-core core index".to_owned())?,
                );
            }
            "--functional" => opts.functional = true,
            "--listing" => opts.listing = true,
            "--emit-bin" => opts.emit_bin = Some(value("--emit-bin")?),
            "--describe" => opts.describe = true,
            "--faults" => {
                opts.faults = Some(value("--faults")?.parse().map_err(
                    |e: mempool::ParseFaultSpecError| e.to_string(),
                )?);
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed value".to_owned())?;
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            _ if arg.starts_with('-') => return Err(format!("unknown option `{arg}`\n{USAGE}")),
            _ => opts.path = arg,
        }
    }
    if opts.path.is_empty() && !opts.describe {
        return Err(USAGE.to_owned());
    }
    Ok(opts)
}

fn run_functional(opts: &Options, program: &mempool_riscv::Program) -> Result<(), String> {
    use mempool::{FunctionalSim, L1Memory};
    let mut config = if opts.small {
        ClusterConfig::small(opts.topology)
    } else {
        ClusterConfig::paper(opts.topology)
    };
    if !opts.scramble {
        config.seq_region_bytes = None;
    }
    if opts.faults.is_some() {
        return Err("--faults requires the cycle-accurate simulator".to_owned());
    }
    let mut sim = FunctionalSim::new(config).map_err(|e| e.to_string())?;
    sim.load_program(program).map_err(|e| e.to_string())?;
    let steps = sim.run(opts.max_cycles).map_err(|e| e.to_string())?;
    println!(
        "functional run finished in {steps} round-robin steps ({} instructions, {} cores)",
        sim.instret(),
        config.num_cores()
    );
    if sim.any_faulted() {
        println!("warning: at least one core halted on a fault");
    }
    if let Some((addr, words)) = opts.dump_mem {
        println!("\nL1 at {addr:#010x} ({words} words):");
        let dump = sim.read_words(addr, words).map_err(|e| e.to_string())?;
        for (i, w) in dump.into_iter().enumerate() {
            if i % 4 == 0 {
                print!("  {:08x}: ", addr as usize + 4 * i);
            }
            print!("{w:08x} ");
            if i % 4 == 3 {
                println!();
            }
        }
        if words % 4 != 0 {
            println!();
        }
    }
    Ok(())
}

fn parse_u32(s: &str) -> Option<u32> {
    if let Some(hex) = s.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(opts: &Options) -> Result<(), String> {
    if opts.describe {
        let mut config = if opts.small {
            ClusterConfig::small(opts.topology)
        } else {
            ClusterConfig::paper(opts.topology)
        };
        if !opts.scramble {
            config.seq_region_bytes = None;
        }
        let cluster = Cluster::snitch(config).map_err(|e| e.to_string())?;
        print!("{}", cluster.describe());
        return Ok(());
    }
    let source =
        std::fs::read_to_string(&opts.path).map_err(|e| format!("{}: {e}", opts.path))?;
    let program = assemble(&source).map_err(|e| format!("{}: {e}", opts.path))?;

    if opts.listing {
        print!("{}", program.listing());
        return Ok(());
    }
    if let Some(out) = &opts.emit_bin {
        let bytes: Vec<u8> = program
            .words()
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        std::fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote {} bytes to {out}", bytes.len());
        return Ok(());
    }

    if opts.functional {
        return run_functional(opts, &program);
    }
    let mut config = if opts.small {
        ClusterConfig::small(opts.topology)
    } else {
        ClusterConfig::paper(opts.topology)
    };
    if !opts.scramble {
        config.seq_region_bytes = None;
    }
    if opts.faults.is_some() {
        config.resilience = ResilienceConfig::standard();
    }
    let mut cluster = Cluster::snitch(config).map_err(|e| e.to_string())?;
    cluster.load_program(&program).map_err(|e| e.to_string())?;
    if let Some(spec) = opts.faults {
        println!("fault injection: {spec} (seed {})", opts.seed);
        cluster.set_fault_plan(Some(FaultPlan::new(opts.seed, spec)));
    }
    if let Some(core) = opts.trace_core {
        cluster
            .cores_mut()
            .get_mut(core)
            .ok_or_else(|| format!("core {core} out of range"))?
            .enable_trace(32);
    }
    let cycles = cluster.run(opts.max_cycles).map_err(|e| e.to_string())?;

    let stats = cluster.stats();
    let cores = cluster.core_stats_total();
    println!(
        "finished in {cycles} cycles on {} ({} cores, scrambling {})",
        opts.topology,
        config.num_cores(),
        if opts.scramble { "on" } else { "off" }
    );
    println!(
        "instructions: {} ({:.3} IPC/core), memory: {} requests, {:.1} % local, \
         latency mean {:.2}",
        cores.instret,
        cores.instret as f64 / (cycles.max(1) as f64 * config.num_cores() as f64),
        stats.requests_issued,
        100.0 * stats.locality(),
        stats.latency.mean()
    );
    let faulted = cluster.cores().iter().filter(|c| c.faulted()).count();
    if faulted > 0 {
        println!("warning: {faulted} core(s) halted on a fault");
    }
    if opts.faults.is_some() {
        println!("fault counters: {}", stats.faults);
        println!(
            "quarantined banks: {}, fault log: {} event(s) ({} dropped)",
            cluster.quarantined_banks(),
            cluster.fault_log().len(),
            cluster.fault_log().dropped()
        );
        for event in cluster.fault_log().events() {
            println!("  {event}");
        }
    }

    if let Some(core) = opts.dump_regs {
        let core_ref = cluster
            .cores()
            .get(core)
            .ok_or_else(|| format!("core {core} out of range"))?;
        println!("\ncore {core} registers (pc={:#010x}):", core_ref.pc());
        for reg in Reg::all() {
            print!("  {:>4}={:08x}", reg.abi_name(), core_ref.reg(reg));
            if (reg.index() + 1) % 4 == 0 {
                println!();
            }
        }
    }
    if let Some(core) = opts.trace_core {
        println!("\ncore {core} retirement trace (last 32):");
        for entry in cluster.cores()[core].trace() {
            println!("  cycle {:>8}  {:08x}:  {}", entry.cycle, entry.pc, entry.instr);
        }
    }
    if let Some((addr, words)) = opts.dump_mem {
        println!("\nL1 at {addr:#010x} ({words} words):");
        let dump = cluster.read_words(addr, words).map_err(|e| e.to_string())?;
        for (i, w) in dump.into_iter().enumerate() {
            if i % 4 == 0 {
                print!("  {:08x}: ", addr as usize + 4 * i);
            }
            print!("{w:08x} ");
            if i % 4 == 3 {
                println!();
            }
        }
        if words % 4 != 0 {
            println!();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Options, String> {
        parse_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_flags() {
        let o = args(&["prog.s"]).unwrap();
        assert_eq!(o.topology, Topology::TopH);
        assert!(o.scramble && !o.small && !o.functional);
        assert_eq!(o.path, "prog.s");

        let o = args(&[
            "--topology", "top1", "--small", "--no-scramble", "--max-cycles", "123",
            "--dump-regs", "7", "--dump-mem", "0x100:8", "--trace-core", "3",
            "--functional", "p.s",
        ])
        .unwrap();
        assert_eq!(o.topology, Topology::Top1);
        assert!(o.small && !o.scramble && o.functional);
        assert_eq!(o.max_cycles, 123);
        assert_eq!(o.dump_regs, Some(7));
        assert_eq!(o.dump_mem, Some((0x100, 8)));
        assert_eq!(o.trace_core, Some(3));
    }

    #[test]
    fn rejections() {
        assert!(args(&[]).is_err(), "missing path");
        assert!(args(&["--topology", "mesh", "p.s"]).is_err());
        assert!(args(&["--dump-mem", "100", "p.s"]).is_err(), "missing :words");
        assert!(args(&["--max-cycles", "many", "p.s"]).is_err());
        assert!(args(&["--bogus", "p.s"]).is_err());
        assert!(args(&["--faults", "warp_core=0.5", "p.s"]).is_err());
        assert!(args(&["--seed", "abc", "p.s"]).is_err());
    }

    #[test]
    fn fault_flags() {
        let o = args(&["--faults", "bank_fail=2,link_stall=0.01", "--seed", "42", "p.s"]).unwrap();
        let spec = o.faults.expect("spec parsed");
        assert_eq!(spec.bank_fail, 2);
        assert_eq!(spec.link_stall, 0.01);
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn hex_and_decimal_addresses() {
        assert_eq!(parse_u32("0x20"), Some(0x20));
        assert_eq!(parse_u32("32"), Some(32));
        assert_eq!(parse_u32("zz"), None);
    }
}
