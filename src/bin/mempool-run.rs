//! `mempool-run` — assemble an RV32IMA source file and execute it on the
//! cycle-accurate MemPool cluster.
//!
//! ```console
//! $ mempool-run program.s                        # 256 cores, TopH
//! $ mempool-run --topology top1 --small prog.s  # 64 cores, Top1
//! $ mempool-run --no-scramble --dump-mem 0x40000:8 prog.s
//! ```

use mempool::{
    Cluster, ClusterConfig, ClusterSnapshot, FaultPlan, FaultSpec, ResilienceConfig, SimError,
    Topology,
};
use mempool_riscv::{assemble, Reg};
use std::fmt;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug)]
struct Options {
    topology: Topology,
    small: bool,
    scramble: bool,
    max_cycles: u64,
    dump_regs: Option<usize>,
    dump_mem: Option<(u32, usize)>,
    trace_core: Option<usize>,
    functional: bool,
    listing: bool,
    emit_bin: Option<String>,
    describe: bool,
    faults: Option<FaultSpec>,
    seed: u64,
    checkpoint_every: u64,
    checkpoint_file: Option<String>,
    resume: Option<String>,
    json: bool,
    parallel: usize,
    bench_json: Option<String>,
    bench_cores: Vec<usize>,
    bench_cycles: u64,
    path: String,
}

const USAGE: &str = "usage: mempool-run [OPTIONS] <program.s>

options:
  --topology <top1|top4|topH|ideal>  interconnect topology (default topH)
  --small                            64-core cluster instead of 256
  --no-scramble                      disable the hybrid addressing scheme
  --max-cycles <n>                   cycle budget (default 100000000)
  --dump-regs <core>                 print core's registers after the run
  --dump-mem <addr>:<words>          print an L1 region after the run
  --trace-core <core>                print the core's last 32 retired instructions
  --functional                       run on the untimed reference simulator
  --listing                          print the assembled program and exit
  --emit-bin <file>                  write the assembled image (LE words) and exit
  --describe                         print the instantiated hardware and exit
  --faults <spec>                    inject faults: key=value pairs, e.g.
                                     bank_fail=2,link_stall=0.01 (see FaultSpec)
  --seed <n>                         fault-injection seed (default 0)
  --checkpoint-every <n>             write a checkpoint every n cycles
  --checkpoint-file <file>           checkpoint path (default <program.s>.ckpt)
  --resume <file>                    restore a checkpoint and continue the run
  --json                             machine-readable result (incl. state digest)
  --parallel <n>                     step tiles on n worker threads (0 = serial,
                                     bit-identical results either way)
  --bench-json <file>                run the simulator benchmark matrix instead of
                                     a program and write the report to <file>
  --bench-cores <16|256|all>         bench cluster sizes (default all)
  --bench-cycles <n>                 measured cycles per bench point (default 2000)
  --help                             this text

exit status: 0 on success, 1 on runtime errors, 2 on usage errors";

/// A typed argument-parsing failure (or the `--help` request, which is not
/// an error and exits 0).
#[derive(Debug, PartialEq, Eq)]
enum ParseArgsError {
    /// `--help`/`-h`: print usage on stdout and exit successfully.
    Help,
    /// An option that requires a value was last on the command line.
    MissingValue(&'static str),
    /// An option's value did not parse; `reason` names what was expected.
    InvalidValue {
        option: &'static str,
        reason: String,
    },
    /// An option we do not recognize.
    UnknownOption(String),
    /// A second positional argument after the program path.
    UnexpectedArgument(String),
    /// No program path was given (and no `--describe`).
    MissingProgram,
    /// Two options that cannot be combined.
    Conflict(&'static str),
}

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseArgsError::Help => write!(f, "help requested"),
            ParseArgsError::MissingValue(option) => write!(f, "{option} expects a value"),
            ParseArgsError::InvalidValue { option, reason } => {
                write!(f, "invalid {option} value: {reason}")
            }
            ParseArgsError::UnknownOption(arg) => write!(f, "unknown option `{arg}`"),
            ParseArgsError::UnexpectedArgument(arg) => {
                write!(f, "unexpected argument `{arg}` (program path already given)")
            }
            ParseArgsError::MissingProgram => write!(f, "no program path given"),
            ParseArgsError::Conflict(what) => write!(f, "{what}"),
        }
    }
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Options, ParseArgsError> {
    let mut opts = Options {
        topology: Topology::TopH,
        small: false,
        scramble: true,
        max_cycles: 100_000_000,
        dump_regs: None,
        dump_mem: None,
        trace_core: None,
        functional: false,
        listing: false,
        emit_bin: None,
        describe: false,
        faults: None,
        seed: 0,
        checkpoint_every: 0,
        checkpoint_file: None,
        resume: None,
        json: false,
        parallel: 0,
        bench_json: None,
        bench_cores: vec![16, 256],
        bench_cycles: 2_000,
        path: String::new(),
    };
    let invalid = |option: &'static str, reason: &str| ParseArgsError::InvalidValue {
        option,
        reason: reason.to_owned(),
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &'static str| {
            args.next().ok_or(ParseArgsError::MissingValue(name))
        };
        match arg.as_str() {
            "--topology" => {
                opts.topology = match value("--topology")?.as_str() {
                    "top1" => Topology::Top1,
                    "top4" => Topology::Top4,
                    "topH" | "toph" => Topology::TopH,
                    "ideal" => Topology::Ideal,
                    other => {
                        return Err(invalid(
                            "--topology",
                            &format!("unknown topology `{other}`"),
                        ))
                    }
                };
            }
            "--small" => opts.small = true,
            "--no-scramble" => opts.scramble = false,
            "--max-cycles" => {
                opts.max_cycles = value("--max-cycles")?
                    .parse()
                    .map_err(|_| invalid("--max-cycles", "expected a cycle count"))?;
            }
            "--dump-regs" => {
                opts.dump_regs = Some(
                    value("--dump-regs")?
                        .parse()
                        .map_err(|_| invalid("--dump-regs", "expected a core index"))?,
                );
            }
            "--dump-mem" => {
                let spec = value("--dump-mem")?;
                let (addr, words) = spec
                    .split_once(':')
                    .ok_or_else(|| invalid("--dump-mem", "expected <addr>:<words>"))?;
                let addr =
                    parse_u32(addr).ok_or_else(|| invalid("--dump-mem", "bad address"))?;
                let words = words
                    .parse()
                    .map_err(|_| invalid("--dump-mem", "bad word count"))?;
                opts.dump_mem = Some((addr, words));
            }
            "--trace-core" => {
                opts.trace_core = Some(
                    value("--trace-core")?
                        .parse()
                        .map_err(|_| invalid("--trace-core", "expected a core index"))?,
                );
            }
            "--functional" => opts.functional = true,
            "--listing" => opts.listing = true,
            "--emit-bin" => opts.emit_bin = Some(value("--emit-bin")?),
            "--describe" => opts.describe = true,
            "--faults" => {
                opts.faults = Some(value("--faults")?.parse().map_err(
                    |e: mempool::ParseFaultSpecError| invalid("--faults", &e.to_string()),
                )?);
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| invalid("--seed", "expected an integer"))?;
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|_| invalid("--checkpoint-every", "expected a cycle count"))?;
                if opts.checkpoint_every == 0 {
                    return Err(invalid("--checkpoint-every", "interval must be nonzero"));
                }
            }
            "--checkpoint-file" => opts.checkpoint_file = Some(value("--checkpoint-file")?),
            "--resume" => opts.resume = Some(value("--resume")?),
            "--json" => opts.json = true,
            "--parallel" => {
                opts.parallel = value("--parallel")?
                    .parse()
                    .map_err(|_| invalid("--parallel", "expected a worker count"))?;
            }
            "--bench-json" => opts.bench_json = Some(value("--bench-json")?),
            "--bench-cores" => {
                opts.bench_cores = match value("--bench-cores")?.as_str() {
                    "16" => vec![16],
                    "256" => vec![256],
                    "all" => vec![16, 256],
                    other => {
                        return Err(invalid(
                            "--bench-cores",
                            &format!("expected 16, 256 or all, got `{other}`"),
                        ))
                    }
                };
            }
            "--bench-cycles" => {
                opts.bench_cycles = value("--bench-cycles")?
                    .parse()
                    .map_err(|_| invalid("--bench-cycles", "expected a cycle count"))?;
                if opts.bench_cycles == 0 {
                    return Err(invalid("--bench-cycles", "must be nonzero"));
                }
            }
            "--help" | "-h" => return Err(ParseArgsError::Help),
            _ if arg.starts_with('-') => return Err(ParseArgsError::UnknownOption(arg)),
            _ if opts.path.is_empty() => opts.path = arg,
            _ => return Err(ParseArgsError::UnexpectedArgument(arg)),
        }
    }
    if opts.path.is_empty() && !opts.describe && opts.bench_json.is_none() {
        return Err(ParseArgsError::MissingProgram);
    }
    if opts.bench_json.is_some() {
        if !opts.path.is_empty() {
            return Err(ParseArgsError::Conflict(
                "--bench-json runs its own workload; drop the program path",
            ));
        }
        if opts.functional {
            return Err(ParseArgsError::Conflict(
                "--bench-json requires the cycle-accurate simulator",
            ));
        }
        if opts.faults.is_some() {
            return Err(ParseArgsError::Conflict(
                "--bench-json measures the fault-free engines",
            ));
        }
        if opts.json {
            return Err(ParseArgsError::Conflict(
                "--bench-json already writes a JSON report",
            ));
        }
        if opts.checkpoint_every > 0 || opts.checkpoint_file.is_some() || opts.resume.is_some() {
            return Err(ParseArgsError::Conflict(
                "--bench-json cannot be combined with checkpointing",
            ));
        }
    }
    if opts.functional && opts.parallel > 0 {
        return Err(ParseArgsError::Conflict(
            "--parallel requires the cycle-accurate simulator",
        ));
    }
    if opts.functional {
        if opts.faults.is_some() {
            return Err(ParseArgsError::Conflict(
                "--faults requires the cycle-accurate simulator",
            ));
        }
        if opts.checkpoint_every > 0 || opts.checkpoint_file.is_some() || opts.resume.is_some() {
            return Err(ParseArgsError::Conflict(
                "checkpointing requires the cycle-accurate simulator",
            ));
        }
        if opts.json {
            return Err(ParseArgsError::Conflict(
                "--json requires the cycle-accurate simulator",
            ));
        }
    }
    if opts.json && (opts.dump_regs.is_some() || opts.dump_mem.is_some() || opts.trace_core.is_some())
    {
        return Err(ParseArgsError::Conflict(
            "--json cannot be combined with --dump-regs/--dump-mem/--trace-core",
        ));
    }
    Ok(opts)
}

fn run_functional(opts: &Options, program: &mempool_riscv::Program) -> Result<(), String> {
    use mempool::{FunctionalSim, L1Memory};
    let mut config = if opts.small {
        ClusterConfig::small(opts.topology)
    } else {
        ClusterConfig::paper(opts.topology)
    };
    if !opts.scramble {
        config.seq_region_bytes = None;
    }
    let mut sim = FunctionalSim::new(config).map_err(|e| e.to_string())?;
    sim.load_program(program).map_err(|e| e.to_string())?;
    let steps = sim.run(opts.max_cycles).map_err(|e| e.to_string())?;
    println!(
        "functional run finished in {steps} round-robin steps ({} instructions, {} cores)",
        sim.instret(),
        config.num_cores()
    );
    if sim.any_faulted() {
        println!("warning: at least one core halted on a fault");
    }
    if let Some((addr, words)) = opts.dump_mem {
        println!("\nL1 at {addr:#010x} ({words} words):");
        let dump = sim.read_words(addr, words).map_err(|e| e.to_string())?;
        for (i, w) in dump.into_iter().enumerate() {
            if i % 4 == 0 {
                print!("  {:08x}: ", addr as usize + 4 * i);
            }
            print!("{w:08x} ");
            if i % 4 == 3 {
                println!();
            }
        }
        if words % 4 != 0 {
            println!();
        }
    }
    Ok(())
}

fn parse_u32(s: &str) -> Option<u32> {
    if let Some(hex) = s.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(ParseArgsError::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the benchmark matrix and writes the report; a digest divergence
/// between the serial and parallel engines is a hard error (exit 1).
fn run_bench_mode(opts: &Options, out: &str) -> Result<(), String> {
    use mempool_suite::bench::{run_bench, BenchConfig};
    let config = BenchConfig {
        cycles: opts.bench_cycles,
        workers: opts.parallel,
        core_counts: opts.bench_cores.clone(),
        ..BenchConfig::default()
    };
    let report = run_bench(&config)?;
    std::fs::write(out, report.to_json()).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "bench: {} points, {} digest checks -> {out}",
        report.points.len(),
        report.digest_checks.len()
    );
    for p in &report.points {
        println!(
            "  {:>5} {:>3} cores {:>8}: {:>12.0} sim-cycles/s ({:.2e} core-cycles/s)",
            p.topology.to_string(),
            p.cores,
            p.engine,
            p.sim_cycles_per_sec,
            p.core_cycles_per_sec
        );
    }
    if !report.digests_match() {
        for c in report.digest_checks.iter().filter(|c| !c.matches()) {
            eprintln!(
                "digest divergence: {} at {} cores after {} cycles: serial {:#018x} != parallel {:#018x}",
                c.topology, c.cores, c.cycles, c.serial_digest, c.parallel_digest
            );
        }
        return Err("serial and parallel engines diverged".to_string());
    }
    Ok(())
}

fn run(opts: &Options) -> Result<(), String> {
    if let Some(out) = &opts.bench_json {
        return run_bench_mode(opts, out);
    }
    if opts.describe {
        let mut config = if opts.small {
            ClusterConfig::small(opts.topology)
        } else {
            ClusterConfig::paper(opts.topology)
        };
        if !opts.scramble {
            config.seq_region_bytes = None;
        }
        let cluster = Cluster::snitch(config).map_err(|e| e.to_string())?;
        print!("{}", cluster.describe());
        return Ok(());
    }
    let source =
        std::fs::read_to_string(&opts.path).map_err(|e| format!("{}: {e}", opts.path))?;
    let program = assemble(&source).map_err(|e| format!("{}: {e}", opts.path))?;

    if opts.listing {
        print!("{}", program.listing());
        return Ok(());
    }
    if let Some(out) = &opts.emit_bin {
        let bytes: Vec<u8> = program
            .words()
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        std::fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote {} bytes to {out}", bytes.len());
        return Ok(());
    }

    if opts.functional {
        return run_functional(opts, &program);
    }
    let mut config = if opts.small {
        ClusterConfig::small(opts.topology)
    } else {
        ClusterConfig::paper(opts.topology)
    };
    if !opts.scramble {
        config.seq_region_bytes = None;
    }
    if opts.faults.is_some() {
        config.resilience = ResilienceConfig::standard();
    }
    let mut cluster = Cluster::snitch(config).map_err(|e| e.to_string())?;
    cluster.load_program(&program).map_err(|e| e.to_string())?;
    cluster.set_parallel(opts.parallel);
    if let Some(spec) = opts.faults {
        if !opts.json {
            println!("fault injection: {spec} (seed {})", opts.seed);
        }
        cluster.set_fault_plan(Some(FaultPlan::new(opts.seed, spec)));
    }
    if let Some(core) = opts.trace_core {
        cluster
            .cores_mut()
            .get_mut(core)
            .ok_or_else(|| format!("core {core} out of range"))?
            .enable_trace(32);
    }
    if let Some(from) = &opts.resume {
        let snap = ClusterSnapshot::read_file(std::path::Path::new(from))
            .map_err(|e| format!("{from}: {e}"))?;
        cluster.restore(&snap).map_err(|e| format!("{from}: {e}"))?;
        if !opts.json {
            println!(
                "resumed from {from} at cycle {} (state digest {:#018x})",
                snap.cycle(),
                snap.state_digest()
            );
        }
    }

    let checkpoint_path: Option<PathBuf> = match (&opts.checkpoint_file, opts.checkpoint_every) {
        (Some(file), _) => Some(PathBuf::from(file)),
        (None, every) if every > 0 => Some(PathBuf::from(format!("{}.ckpt", opts.path))),
        _ => None,
    };
    let start = cluster.now();
    let cycles = if opts.checkpoint_every > 0 {
        let path = checkpoint_path.as_ref().expect("derived above");
        loop {
            let spent = cluster.now() - start;
            let remaining = opts.max_cycles.saturating_sub(spent);
            let chunk = opts.checkpoint_every.min(remaining);
            match cluster.run(chunk) {
                Ok(_) => break cluster.now() - start,
                Err(SimError::Timeout(_)) if chunk < remaining => {
                    // Only the checkpoint interval expired, not the budget.
                    cluster
                        .snapshot()
                        .write_file(path)
                        .map_err(|e| format!("{}: {e}", path.display()))?;
                }
                Err(e) => return Err(e.to_string()),
            }
        }
    } else {
        cluster.run(opts.max_cycles).map_err(|e| e.to_string())?
    };

    if opts.json {
        print_json(&cluster, cycles);
        return Ok(());
    }
    let stats = cluster.stats();
    let cores = cluster.core_stats_total();
    println!(
        "finished in {cycles} cycles on {} ({} cores, scrambling {})",
        opts.topology,
        config.num_cores(),
        if opts.scramble { "on" } else { "off" }
    );
    println!(
        "instructions: {} ({:.3} IPC/core), memory: {} requests, {:.1} % local, \
         latency mean {:.2}",
        cores.instret,
        cores.instret as f64 / (cycles.max(1) as f64 * config.num_cores() as f64),
        stats.requests_issued,
        100.0 * stats.locality(),
        stats.latency.mean()
    );
    let faulted = cluster.cores().iter().filter(|c| c.faulted()).count();
    if faulted > 0 {
        println!("warning: {faulted} core(s) halted on a fault");
    }
    if opts.faults.is_some() {
        println!("fault counters: {}", stats.faults);
        println!(
            "quarantined banks: {}, fault log: {} event(s) ({} dropped)",
            cluster.quarantined_banks(),
            cluster.fault_log().len(),
            cluster.fault_log().dropped()
        );
        for event in cluster.fault_log().events() {
            println!("  {event}");
        }
    }

    if let Some(core) = opts.dump_regs {
        let core_ref = cluster
            .cores()
            .get(core)
            .ok_or_else(|| format!("core {core} out of range"))?;
        println!("\ncore {core} registers (pc={:#010x}):", core_ref.pc());
        for reg in Reg::all() {
            print!("  {:>4}={:08x}", reg.abi_name(), core_ref.reg(reg));
            if (reg.index() + 1) % 4 == 0 {
                println!();
            }
        }
    }
    if let Some(core) = opts.trace_core {
        println!("\ncore {core} retirement trace (last 32):");
        for entry in cluster.cores()[core].trace() {
            println!("  cycle {:>8}  {:08x}:  {}", entry.cycle, entry.pc, entry.instr);
        }
    }
    if let Some((addr, words)) = opts.dump_mem {
        println!("\nL1 at {addr:#010x} ({words} words):");
        let dump = cluster.read_words(addr, words).map_err(|e| e.to_string())?;
        for (i, w) in dump.into_iter().enumerate() {
            if i % 4 == 0 {
                print!("  {:08x}: ", addr as usize + 4 * i);
            }
            print!("{w:08x} ");
            if i % 4 == 3 {
                println!();
            }
        }
        if words % 4 != 0 {
            println!();
        }
    }
    Ok(())
}

/// Machine-readable result record. `state_digest` is the canonical digest
/// over the complete architectural state (see DESIGN.md §9) — two runs of
/// the same program with the same seeds must print the same value.
fn print_json(cluster: &Cluster<mempool_snitch::SnitchCore>, run_cycles: u64) {
    let stats = cluster.stats();
    let cores = cluster.core_stats_total();
    let f = &stats.faults;
    let faulted = cluster.cores().iter().filter(|c| c.faulted()).count();
    println!("{{");
    println!("  \"cycles\": {},", cluster.now());
    println!("  \"run_cycles\": {run_cycles},");
    println!("  \"instret\": {},", cores.instret);
    println!("  \"state_digest\": \"{:#018x}\",", cluster.state_digest());
    println!("  \"l1_digest\": \"{:#018x}\",", cluster.l1_digest());
    println!("  \"requests_issued\": {},", stats.requests_issued);
    println!("  \"responses_delivered\": {},", stats.responses_delivered);
    println!("  \"latency_mean\": {:.6},", stats.latency.mean());
    println!("  \"faulted_cores\": {faulted},");
    println!("  \"quarantined_banks\": {},", cluster.quarantined_banks());
    println!("  \"faults\": {{");
    println!("    \"injected\": {},", f.total_injected());
    println!("    \"banks_failed\": {},", f.banks_failed);
    println!("    \"link_drops\": {},", f.link_drops);
    println!("    \"link_corruptions\": {},", f.link_corruptions);
    println!("    \"core_lockups\": {},", f.core_lockups);
    println!("    \"request_retries\": {},", f.request_retries);
    println!("    \"requests_abandoned\": {}", f.requests_abandoned);
    println!("  }}");
    println!("}}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Options, ParseArgsError> {
        parse_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_flags() {
        let o = args(&["prog.s"]).unwrap();
        assert_eq!(o.topology, Topology::TopH);
        assert!(o.scramble && !o.small && !o.functional);
        assert_eq!(o.path, "prog.s");

        let o = args(&[
            "--topology", "top1", "--small", "--no-scramble", "--max-cycles", "123",
            "--dump-regs", "7", "--dump-mem", "0x100:8", "--trace-core", "3",
            "--functional", "p.s",
        ])
        .unwrap();
        assert_eq!(o.topology, Topology::Top1);
        assert!(o.small && !o.scramble && o.functional);
        assert_eq!(o.max_cycles, 123);
        assert_eq!(o.dump_regs, Some(7));
        assert_eq!(o.dump_mem, Some((0x100, 8)));
        assert_eq!(o.trace_core, Some(3));
    }

    #[test]
    fn parallel_and_bench_flags() {
        let o = args(&["--parallel", "8", "p.s"]).unwrap();
        assert_eq!(o.parallel, 8);
        assert!(o.bench_json.is_none());

        // Bench mode needs no program path and carries its own knobs.
        let o = args(&[
            "--bench-json", "out.json", "--bench-cores", "16", "--bench-cycles", "500",
            "--parallel", "4",
        ])
        .unwrap();
        assert_eq!(o.bench_json.as_deref(), Some("out.json"));
        assert_eq!(o.bench_cores, vec![16]);
        assert_eq!(o.bench_cycles, 500);
        assert_eq!(o.parallel, 4);
        let o = args(&["--bench-json", "out.json", "--bench-cores", "all"]).unwrap();
        assert_eq!(o.bench_cores, vec![16, 256]);

        assert!(matches!(
            args(&["--parallel", "lots", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--parallel", .. })
        ));
        assert!(matches!(
            args(&["--bench-cores", "12", "--bench-json", "o.json"]),
            Err(ParseArgsError::InvalidValue { option: "--bench-cores", .. })
        ));
        assert!(matches!(
            args(&["--bench-cycles", "0", "--bench-json", "o.json"]),
            Err(ParseArgsError::InvalidValue { option: "--bench-cycles", .. })
        ));
        // Conflicts are typed, not silently ignored.
        assert!(matches!(
            args(&["--bench-json", "o.json", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--bench-json", "o.json", "--functional"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--bench-json", "o.json", "--json"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--bench-json", "o.json", "--faults", "bank_fail=1"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--functional", "--parallel", "2", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
    }

    #[test]
    fn rejections_are_typed() {
        assert_eq!(args(&[]).unwrap_err(), ParseArgsError::MissingProgram);
        assert!(matches!(
            args(&["--topology", "mesh", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--topology", .. })
        ));
        assert!(matches!(
            args(&["--dump-mem", "100", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--dump-mem", .. })
        ));
        assert!(matches!(
            args(&["--max-cycles", "many", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--max-cycles", .. })
        ));
        assert_eq!(
            args(&["--bogus", "p.s"]).unwrap_err(),
            ParseArgsError::UnknownOption("--bogus".to_owned())
        );
        assert!(matches!(
            args(&["--faults", "warp_core=0.5", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--faults", .. })
        ));
        assert!(matches!(
            args(&["--seed", "abc", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--seed", .. })
        ));
        assert_eq!(
            args(&["--seed"]).unwrap_err(),
            ParseArgsError::MissingValue("--seed")
        );
        assert_eq!(
            args(&["a.s", "b.s"]).unwrap_err(),
            ParseArgsError::UnexpectedArgument("b.s".to_owned())
        );
    }

    #[test]
    fn help_is_not_an_error_case() {
        assert_eq!(args(&["--help"]).unwrap_err(), ParseArgsError::Help);
        assert_eq!(args(&["-h", "p.s"]).unwrap_err(), ParseArgsError::Help);
    }

    #[test]
    fn checkpoint_flags() {
        let o = args(&[
            "--checkpoint-every", "5000", "--checkpoint-file", "run.ckpt", "p.s",
        ])
        .unwrap();
        assert_eq!(o.checkpoint_every, 5000);
        assert_eq!(o.checkpoint_file.as_deref(), Some("run.ckpt"));

        let o = args(&["--resume", "run.ckpt", "--json", "p.s"]).unwrap();
        assert_eq!(o.resume.as_deref(), Some("run.ckpt"));
        assert!(o.json);

        assert!(matches!(
            args(&["--checkpoint-every", "0", "p.s"]),
            Err(ParseArgsError::InvalidValue { option: "--checkpoint-every", .. })
        ));
    }

    #[test]
    fn functional_conflicts() {
        assert!(matches!(
            args(&["--functional", "--faults", "bank_fail=1", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--functional", "--checkpoint-every", "100", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--functional", "--resume", "x.ckpt", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--functional", "--json", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
        assert!(matches!(
            args(&["--json", "--dump-regs", "0", "p.s"]),
            Err(ParseArgsError::Conflict(_))
        ));
    }

    #[test]
    fn fault_flags() {
        let o = args(&["--faults", "bank_fail=2,link_stall=0.01", "--seed", "42", "p.s"]).unwrap();
        let spec = o.faults.expect("spec parsed");
        assert_eq!(spec.bank_fail, 2);
        assert_eq!(spec.link_stall, 0.01);
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn hex_and_decimal_addresses() {
        assert_eq!(parse_u32("0x20"), Some(0x20));
        assert_eq!(parse_u32("32"), Some(32));
        assert_eq!(parse_u32("zz"), None);
    }
}
