//! `mempool-cli` — command-line client for the `mempool-serve` daemon.
//!
//! Speaks the `mempool-job-v1` JSON-lines protocol over the daemon's Unix
//! socket: submits run/campaign/bench jobs, streams their event feeds,
//! queries health, cancels, and triggers a graceful drain. All the heavy
//! lifting lives in [`mempool_serve::ServeClient`]; this binary is flags,
//! human-readable rendering, and exit codes.

#![cfg(unix)]

use mempool::Topology;
use mempool_serve::{BenchSpec, CampaignSpec, ClientError, JobSpec, RunSpec, ServeClient};
use mempool_traffic::{parse_flat_json, render_config_spec};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: mempool-cli [--socket <path>] <command> [OPTIONS]

Client for the mempool-serve daemon (protocol mempool-job-v1).

commands:
  submit run <file.s>    submit a program for execution
      --topology <ideal|top1|top4|topH>   interconnect (default top1)
      --small                             64-core cluster instead of 256
      --no-scramble                       disable address scrambling
      --max-cycles <n>                    halt deadline in cycles (default 1000000)
      --checkpoint-every <n>              park/heartbeat granularity (default 4096)
      --metrics                           attach the metrics recorder
  submit campaign        submit a fault-injection campaign
      --faults <spec>                     required, e.g. bank_fail=1,link_drop=0.001
      --topology/--small/--no-scramble    as for run
      --trials <n>        (default 3)     --load <f>      (default 0.05)
      --pattern <spec>    (default uniform)
      --warmup <n>        (default 100)   --measure <n>   (default 2000)
      --drain <n>         (default 10000) --seed <n>      (default 1)
      --checkpoint-every <n> (default 256)
      --cycle-budget <n>                  per-trial sim-cycle cap (default none)
  submit bench           submit a simulator-throughput bench matrix
      --cycles <n>        (default 1000)  --warmup <n>    (default 100)
      --cores <list>      (default 16)    --bench-workers <list> (default 2)
  status <job>           one job's state (and result once terminal)
  wait <job>             stream a job's events until it finishes
      --out <file>                        write the result document (metrics /
                                          campaign report / bench report) there
  health                 daemon health and queue counters
  cancel <job>           cancel a queued or running job
  shutdown               ask the daemon to drain (park jobs and exit)

submit options (all kinds):
  --tenant <name>        tenant to charge (default `default`)
  --priority <n>         higher dispatches first (default 0)
  --deadline-secs <n>    per-attempt wall-clock deadline
  --wait                 submit, then behave like `wait <job>` (honors --out)

exit status: 0 on success (wait: job completed), 1 on failures and typed
rejections, 2 on usage errors";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(CliError::Usage(msg)) => {
            if msg.is_empty() {
                println!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("mempool-cli: {msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        }
        Err(CliError::Client(e)) => {
            eprintln!("mempool-cli: {e}");
            ExitCode::from(1)
        }
        Err(CliError::Other(msg)) => {
            eprintln!("mempool-cli: {msg}");
            ExitCode::from(1)
        }
    }
}

enum CliError {
    /// Bad command line; empty message means `--help`.
    Usage(String),
    Client(ClientError),
    Other(String),
}

impl From<ClientError> for CliError {
    fn from(e: ClientError) -> CliError {
        CliError::Client(e)
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

type Fields = BTreeMap<String, String>;

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let mut socket = PathBuf::from("mempool-serve.sock");
    let mut rest = args;
    // `--socket` may precede the command.
    while let Some(arg) = rest.first() {
        match arg.as_str() {
            "--socket" => {
                socket = PathBuf::from(
                    rest.get(1).ok_or_else(|| usage("--socket needs a value"))?,
                );
                rest = &rest[2..];
            }
            "--help" | "-h" => return Err(CliError::Usage(String::new())),
            _ => break,
        }
    }
    let client = ServeClient::connect(&socket);
    let (command, rest) = rest
        .split_first()
        .ok_or_else(|| usage("missing command"))?;
    match command.as_str() {
        "submit" => submit(&client, rest),
        "status" => {
            let job = job_arg(rest)?;
            let fields = client.status(job)?;
            print_status(job, &fields);
            Ok(ExitCode::SUCCESS)
        }
        "wait" => {
            let (job, out) = wait_args(rest)?;
            wait_and_render(&client, job, out.as_deref())
        }
        "health" => {
            let fields = client.health()?;
            for (key, value) in &fields {
                if key != "ok" {
                    println!("{key}: {value}");
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "cancel" => {
            let job = job_arg(rest)?;
            let fields = client.cancel(job)?;
            match fields.get("status") {
                Some(status) => println!("job {job}: {status}"),
                None => println!("job {job}: cancelling"),
            }
            Ok(ExitCode::SUCCESS)
        }
        "shutdown" => {
            client.shutdown()?;
            println!("daemon draining");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(usage(format!("unknown command `{other}`"))),
    }
}

fn job_arg(rest: &[String]) -> Result<u64, CliError> {
    let id = rest.first().ok_or_else(|| usage("expected a job id"))?;
    if rest.len() > 1 {
        return Err(usage(format!("unexpected argument `{}`", rest[1])));
    }
    id.parse()
        .map_err(|_| usage(format!("bad job id `{id}`")))
}

fn wait_args(rest: &[String]) -> Result<(u64, Option<PathBuf>), CliError> {
    let (id, mut rest) = rest
        .split_first()
        .ok_or_else(|| usage("expected a job id"))?;
    let job = id.parse().map_err(|_| usage(format!("bad job id `{id}`")))?;
    let mut out = None;
    while let Some(arg) = rest.first() {
        match arg.as_str() {
            "--out" => {
                out = Some(PathBuf::from(
                    rest.get(1).ok_or_else(|| usage("--out needs a value"))?,
                ));
                rest = &rest[2..];
            }
            other => return Err(usage(format!("unexpected argument `{other}`"))),
        }
    }
    Ok((job, out))
}

// ---------------------------------------------------------------------------
// submit
// ---------------------------------------------------------------------------

struct SubmitCommon {
    tenant: String,
    priority: u8,
    deadline_secs: Option<u64>,
    wait: bool,
    out: Option<PathBuf>,
}

impl Default for SubmitCommon {
    fn default() -> SubmitCommon {
        SubmitCommon {
            tenant: "default".to_owned(),
            priority: 0,
            deadline_secs: None,
            wait: false,
            out: None,
        }
    }
}

fn submit(client: &ServeClient, rest: &[String]) -> Result<ExitCode, CliError> {
    let (kind, rest) = rest
        .split_first()
        .ok_or_else(|| usage("submit: expected run, campaign, or bench"))?;
    let mut common = SubmitCommon::default();
    let spec = match kind.as_str() {
        "run" => submit_run(rest, &mut common)?,
        "campaign" => submit_campaign(rest, &mut common)?,
        "bench" => submit_bench(rest, &mut common)?,
        other => return Err(usage(format!("submit: unknown job kind `{other}`"))),
    };
    spec.validate().map_err(|e| usage(format!("invalid job: {e}")))?;
    let job = client.submit(&common.tenant, common.priority, common.deadline_secs, &spec)?;
    println!("job {job} submitted ({})", spec.kind());
    if common.wait {
        wait_and_render(client, job, common.out.as_deref())
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Parses one flag shared by every submit kind; returns false if the flag
/// is not a common one.
fn common_flag(
    arg: &str,
    next: &mut dyn FnMut(&str) -> Result<String, CliError>,
    common: &mut SubmitCommon,
) -> Result<bool, CliError> {
    match arg {
        "--tenant" => common.tenant = next("--tenant")?,
        "--priority" => {
            common.priority = parse_num::<u8>("--priority", &next("--priority")?)?;
        }
        "--deadline-secs" => {
            common.deadline_secs =
                Some(parse_num::<u64>("--deadline-secs", &next("--deadline-secs")?)?);
        }
        "--wait" => common.wait = true,
        "--out" => common.out = Some(PathBuf::from(next("--out")?)),
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, CliError> {
    v.parse()
        .map_err(|_| usage(format!("{name}: expected a number, got `{v}`")))
}

fn parse_topology_flag(v: &str) -> Result<Topology, CliError> {
    match v {
        "ideal" => Ok(Topology::Ideal),
        "top1" => Ok(Topology::Top1),
        "top4" => Ok(Topology::Top4),
        "topH" | "toph" => Ok(Topology::TopH),
        other => Err(usage(format!("unknown topology `{other}`"))),
    }
}

fn parse_list(name: &str, v: &str) -> Result<Vec<usize>, CliError> {
    v.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| usage(format!("{name}: bad list entry `{p}`")))
        })
        .collect()
}

fn submit_run(rest: &[String], common: &mut SubmitCommon) -> Result<JobSpec, CliError> {
    let mut source: Option<PathBuf> = None;
    let mut topology = Topology::Top1;
    let mut small = false;
    let mut scramble = true;
    let mut spec = RunSpec {
        config_spec: String::new(),
        program: String::new(),
        max_cycles: 1_000_000,
        checkpoint_every: 4096,
        metrics: false,
    };
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        let mut next = |name: &str| {
            args.next()
                .cloned()
                .ok_or_else(|| usage(format!("{name} needs a value")))
        };
        if common_flag(arg, &mut next, common)? {
            continue;
        }
        match arg.as_str() {
            "--topology" => topology = parse_topology_flag(&next("--topology")?)?,
            "--small" => small = true,
            "--no-scramble" => scramble = false,
            "--max-cycles" => {
                spec.max_cycles = parse_num("--max-cycles", &next("--max-cycles")?)?;
            }
            "--checkpoint-every" => {
                spec.checkpoint_every =
                    parse_num("--checkpoint-every", &next("--checkpoint-every")?)?;
            }
            "--metrics" => spec.metrics = true,
            other if !other.starts_with('-') && source.is_none() => {
                source = Some(PathBuf::from(other));
            }
            other => return Err(usage(format!("submit run: unexpected `{other}`"))),
        }
    }
    let source = source.ok_or_else(|| usage("submit run: expected an assembly file"))?;
    spec.program = std::fs::read_to_string(&source)
        .map_err(|e| CliError::Other(format!("reading {}: {e}", source.display())))?;
    spec.config_spec = render_config_spec(topology, small, scramble);
    Ok(JobSpec::Run(spec))
}

fn submit_campaign(rest: &[String], common: &mut SubmitCommon) -> Result<JobSpec, CliError> {
    let mut topology = Topology::Top1;
    let mut small = false;
    let mut scramble = true;
    let mut spec = CampaignSpec {
        config_spec: String::new(),
        faults: String::new(),
        trials: 3,
        load: 0.05,
        pattern: "uniform".to_owned(),
        warmup: 100,
        measure: 2000,
        drain: 10_000,
        seed: 1,
        checkpoint_every: 256,
        cycle_budget: None,
    };
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        let mut next = |name: &str| {
            args.next()
                .cloned()
                .ok_or_else(|| usage(format!("{name} needs a value")))
        };
        if common_flag(arg, &mut next, common)? {
            continue;
        }
        match arg.as_str() {
            "--topology" => topology = parse_topology_flag(&next("--topology")?)?,
            "--small" => small = true,
            "--no-scramble" => scramble = false,
            "--faults" => spec.faults = next("--faults")?,
            "--trials" => spec.trials = parse_num("--trials", &next("--trials")?)?,
            "--load" => spec.load = parse_num("--load", &next("--load")?)?,
            "--pattern" => spec.pattern = next("--pattern")?,
            "--warmup" => spec.warmup = parse_num("--warmup", &next("--warmup")?)?,
            "--measure" => spec.measure = parse_num("--measure", &next("--measure")?)?,
            "--drain" => spec.drain = parse_num("--drain", &next("--drain")?)?,
            "--seed" => spec.seed = parse_num("--seed", &next("--seed")?)?,
            "--checkpoint-every" => {
                spec.checkpoint_every =
                    parse_num("--checkpoint-every", &next("--checkpoint-every")?)?;
            }
            "--cycle-budget" => {
                spec.cycle_budget = Some(parse_num("--cycle-budget", &next("--cycle-budget")?)?);
            }
            other => return Err(usage(format!("submit campaign: unexpected `{other}`"))),
        }
    }
    if spec.faults.is_empty() {
        return Err(usage("submit campaign: --faults is required"));
    }
    spec.config_spec = render_config_spec(topology, small, scramble);
    Ok(JobSpec::Campaign(spec))
}

fn submit_bench(rest: &[String], common: &mut SubmitCommon) -> Result<JobSpec, CliError> {
    let mut spec = BenchSpec {
        cycles: 1000,
        warmup: 100,
        cores: vec![16],
        workers: vec![2],
    };
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        let mut next = |name: &str| {
            args.next()
                .cloned()
                .ok_or_else(|| usage(format!("{name} needs a value")))
        };
        if common_flag(arg, &mut next, common)? {
            continue;
        }
        match arg.as_str() {
            "--cycles" => spec.cycles = parse_num("--cycles", &next("--cycles")?)?,
            "--warmup" => spec.warmup = parse_num("--warmup", &next("--warmup")?)?,
            "--cores" => spec.cores = parse_list("--cores", &next("--cores")?)?,
            "--bench-workers" => {
                spec.workers = parse_list("--bench-workers", &next("--bench-workers")?)?;
            }
            other => return Err(usage(format!("submit bench: unexpected `{other}`"))),
        }
    }
    Ok(JobSpec::Bench(spec))
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn print_status(job: u64, fields: &Fields) {
    let status = fields.get("status").map_or("?", String::as_str);
    let attempt = fields.get("attempt").map_or("0", String::as_str);
    println!("job {job}: {status} (attempt {attempt})");
    if let Some(result) = fields.get("result") {
        println!("result: {result}");
    }
}

/// Streams a job's events until terminal, prints progress, optionally
/// writes the embedded result document to `out`. Exit code mirrors the
/// job: 0 completed, 1 failed or cancelled.
fn wait_and_render(
    client: &ServeClient,
    job: u64,
    out: Option<&Path>,
) -> Result<ExitCode, CliError> {
    let mut on_event = |fields: &Fields| {
        match fields.get("event").map(String::as_str) {
            Some("state") => {
                if let Some(status) = fields.get("status") {
                    eprintln!("job {job}: {status}");
                }
            }
            Some("heartbeat") => {
                if let Some(cycle) = fields.get("cycle") {
                    eprintln!("job {job}: heartbeat at cycle {cycle}");
                }
            }
            Some("attempt-failed") => {
                eprintln!(
                    "job {job}: attempt {} failed ({})",
                    fields.get("attempt").map_or("?", String::as_str),
                    fields.get("kind").map_or("?", String::as_str),
                );
            }
            _ => {}
        }
    };
    let done = client.wait(job, &mut on_event)?;
    let status = done.get("status").map_or("?", String::as_str);
    println!("job {job}: {status}");
    let result = done.get("result").cloned().unwrap_or_default();
    if !result.is_empty() {
        render_result(job, &result, out)?;
    }
    Ok(if status == "completed" {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// The result payload is itself a flat JSON document; nested documents
/// (metrics registry, campaign report, bench report) ride inside it as
/// escaped strings. Surface the scalars, and write the first embedded
/// document to `out` when asked.
fn render_result(job: u64, result: &str, out: Option<&Path>) -> Result<(), CliError> {
    let Some(fields) = parse_flat_json(result) else {
        println!("result: {result}");
        return Ok(());
    };
    for (key, value) in &fields {
        if !matches!(key.as_str(), "metrics" | "report") {
            println!("{key}: {value}");
        }
    }
    if let Some(out) = out {
        // parse_flat_json already unescaped the embedded document.
        let doc = fields
            .get("metrics")
            .or_else(|| fields.get("report"))
            .ok_or_else(|| {
                CliError::Other(format!("job {job} result has no embedded document"))
            })?;
        std::fs::write(out, doc.as_bytes())
            .map_err(|e| CliError::Other(format!("writing {}: {e}", out.display())))?;
        println!("wrote {}", out.display());
    }
    Ok(())
}
