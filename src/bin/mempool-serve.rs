//! `mempool-serve` — the fault-tolerant multi-tenant simulation service.
//!
//! Two entry points share this binary:
//!
//! - **Daemon** (default): binds the Unix socket, replays the job journal,
//!   and supervises a fleet of crash-isolated worker processes (see
//!   [`mempool_serve::daemon`]). `SIGTERM`/`SIGINT` starts a graceful
//!   drain: every in-flight job checkpoint-parks and a restart with the
//!   same `--state-dir` resumes it bit-identically.
//! - **`job-worker`** (internal): spawned by the daemon with one job
//!   document on stdin; executes a run/campaign/bench job, reporting
//!   `heartbeat`/`parked`/`result`/`error` lines over stdout and exiting
//!   0 (done), 3 (checkpoint-parked), or nonzero (failed — the daemon
//!   classifies and retries).

#![cfg(unix)]

use mempool::{CancelToken, ObsConfig, SimSession};
use mempool_serve::{run_daemon, DaemonConfig, JobSpec};
use mempool_suite::bench::{run_bench_supervised, BenchConfig};
use mempool_suite::error::Error;
use mempool_traffic::{
    append_trial, json_escape, open_manifest, parse_config_spec, parse_flat_json,
    run_trial_supervised, CampaignConfig, CampaignError, CampaignReport, Pattern, TrialStop,
    TrialSupervision, Windows,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: mempool-serve [OPTIONS]

The simulation service daemon: accepts run/campaign/bench jobs over a Unix
socket (protocol mempool-job-v1, see `mempool-cli`), multiplexes them over
supervised worker processes, and checkpoint-parks everything on SIGTERM so
a restart with the same --state-dir resumes bit-identically.

options:
  --socket <path>        Unix socket to listen on (default mempool-serve.sock)
  --state-dir <dir>      journal + job checkpoints (default mempool-serve-state)
  --workers <n>          concurrent worker processes (default 2)
  --queue-depth <n>      bound on queued jobs; beyond it submissions get a
                         typed `overloaded` rejection (default 64)
  --default-quota <n>    per-tenant in-flight quota (default 8)
  --quota <tenant=n>     quota override for one tenant (repeatable; 0 blocks)
  --max-attempts <n>     attempts per job before giving up (default 3)
  --backoff-ms <n>       retry backoff base in ms, exponential + seeded
                         jitter (default 50)
  --deadline-secs <n>    default wall-clock deadline per attempt (default none)
  --help                 this text

exit status: 0 after a clean drain, 1 on runtime errors, 2 on usage errors";

mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Routes SIGINT and SIGTERM to the `INTERRUPTED` flag (the daemon's
    /// drain trigger; the worker's park trigger).
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("job-worker") {
        return job_worker_mode();
    }
    match daemon_mode(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(Error::Usage(msg)) => {
            if msg.is_empty() {
                println!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("mempool-serve: {msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        }
        Err(e) => {
            eprintln!("mempool-serve: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

// ---------------------------------------------------------------------------
// Daemon mode.
// ---------------------------------------------------------------------------

fn daemon_mode(args: &[String]) -> Result<(), Error> {
    let mut config = DaemonConfig::default();
    let mut args = args.iter();
    let usage = |msg: String| Error::Usage(msg);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| Error::Usage(format!("{name} needs a value")))
        };
        let parse_num = |name: &str, v: &str| {
            v.parse::<u64>()
                .map_err(|_| Error::Usage(format!("{name}: expected a number, got `{v}`")))
        };
        match arg.as_str() {
            "--socket" => config.socket = PathBuf::from(value("--socket")?),
            "--state-dir" => config.state_dir = PathBuf::from(value("--state-dir")?),
            "--workers" => {
                config.worker_slots = parse_num("--workers", value("--workers")?)? as usize;
            }
            "--queue-depth" => {
                config.scheduler.queue_depth =
                    parse_num("--queue-depth", value("--queue-depth")?)? as usize;
            }
            "--default-quota" => {
                config.scheduler.default_quota =
                    parse_num("--default-quota", value("--default-quota")?)? as u32;
            }
            "--quota" => {
                let spec = value("--quota")?;
                let (tenant, n) = spec
                    .split_once('=')
                    .ok_or_else(|| usage(format!("--quota: expected tenant=n, got `{spec}`")))?;
                let n = parse_num("--quota", n)? as u32;
                config.scheduler.quotas.insert(tenant.to_owned(), n);
            }
            "--max-attempts" => {
                config.retry.max_attempts =
                    parse_num("--max-attempts", value("--max-attempts")?)? as u32;
            }
            "--backoff-ms" => {
                config.retry.backoff_base_ms = parse_num("--backoff-ms", value("--backoff-ms")?)?;
            }
            "--deadline-secs" => {
                config.default_deadline = Some(Duration::from_secs(parse_num(
                    "--deadline-secs",
                    value("--deadline-secs")?,
                )?));
            }
            "--help" | "-h" => return Err(Error::Usage(String::new())),
            other => return Err(usage(format!("unknown option `{other}`"))),
        }
    }
    sig::install();
    println!(
        "mempool-serve: listening on {} ({} worker slot(s), state in {})",
        config.socket.display(),
        config.worker_slots,
        config.state_dir.display()
    );
    let summary =
        run_daemon(config, &sig::INTERRUPTED).map_err(|e| Error::io("mempool-serve", e))?;
    println!(
        "mempool-serve: drained — {} completed, {} failed, {} cancelled, {} parked, {} queued{}",
        summary.completed,
        summary.failed,
        summary.cancelled,
        summary.parked,
        summary.queued,
        if summary.journal_skipped > 0 {
            format!(" ({} corrupt journal line(s) skipped)", summary.journal_skipped)
        } else {
            String::new()
        }
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Worker mode: one job per process, crash isolation by construction.
// ---------------------------------------------------------------------------

/// Reports a worker failure over stdout (the daemon attaches it as the
/// failure detail) and exits 1.
fn fail(msg: &str) -> ExitCode {
    println!("error {msg}");
    ExitCode::from(1)
}

fn parked() -> bool {
    sig::INTERRUPTED.load(std::sync::atomic::Ordering::SeqCst)
}

fn job_worker_mode() -> ExitCode {
    sig::install();
    let mut line = String::new();
    if let Err(e) = std::io::stdin().read_line(&mut line) {
        return fail(&format!("reading the job document: {e}"));
    }
    let Some(fields) = parse_flat_json(&line) else {
        return fail("malformed job document");
    };
    let Some(ckpt) = fields.get("checkpoint").map(PathBuf::from) else {
        return fail("job document lacks a checkpoint path");
    };
    let spec = match JobSpec::from_fields(&fields) {
        Ok(spec) => spec,
        Err(e) => return fail(&e),
    };
    match spec {
        JobSpec::Run(spec) => run_worker(&spec, &ckpt),
        JobSpec::Campaign(spec) => campaign_worker(&spec, &ckpt),
        JobSpec::Bench(spec) => bench_worker(&spec),
    }
}

fn run_worker(spec: &mempool_serve::RunSpec, ckpt: &Path) -> ExitCode {
    let config = match parse_config_spec(&spec.config_spec) {
        Ok(config) => config,
        Err(e) => return fail(&e),
    };
    let program = match mempool_riscv::assemble(&spec.program) {
        Ok(program) => program,
        Err(e) => return fail(&format!("program does not assemble: {e}")),
    };
    let mut builder = SimSession::builder(config);
    if spec.metrics {
        builder = builder.observability(ObsConfig::histograms());
    }
    let mut session = match builder.build_snitch() {
        Ok(session) => session,
        Err(e) => return fail(&format!("building the session: {e}")),
    };
    if let Err(e) = session.load_program(&program) {
        return fail(&format!("loading the program: {e}"));
    }
    if ckpt.exists() {
        // A corrupt checkpoint costs the progress it held, never the job:
        // discard it and replay from reset (determinism makes the replay
        // land on the identical result).
        if let Err(e) = session.unpark(ckpt) {
            eprintln!(
                "mempool-serve worker: discarding unreadable checkpoint {}: {e}",
                ckpt.display()
            );
            let _ = std::fs::remove_file(ckpt);
        }
    }
    loop {
        if parked() {
            if let Err(e) = session.park(ckpt) {
                return fail(&format!("parking checkpoint: {e}"));
            }
            println!("parked {}", session.now());
            return ExitCode::from(3);
        }
        let now = session.now();
        if now >= spec.max_cycles {
            return fail(&format!(
                "program did not halt within {} cycles",
                spec.max_cycles
            ));
        }
        let chunk = spec.checkpoint_every.min(spec.max_cycles - now).max(1);
        match session.cluster_mut().run(chunk) {
            Ok(_) => {
                let metrics = if spec.metrics {
                    session.metrics_registry().to_json()
                } else {
                    String::new()
                };
                println!(
                    "result {{\"outcome\":\"completed\",\"cycles\":{},\"state_digest\":\"{:#018x}\",\"metrics\":\"{}\"}}",
                    session.now(),
                    session.state_digest(),
                    json_escape(&metrics),
                );
                let _ = std::fs::remove_file(ckpt);
                return ExitCode::SUCCESS;
            }
            Err(mempool::SimError::Timeout(_)) => {
                // Chunk boundary: refresh the checkpoint and report
                // liveness; the loop re-checks the park flag.
                if let Err(e) = session.park(ckpt) {
                    return fail(&format!("writing checkpoint: {e}"));
                }
                println!("heartbeat {}", session.now());
            }
            Err(e) => return fail(&format!("simulation stopped: {e}")),
        }
    }
}

fn campaign_worker(spec: &mempool_serve::CampaignSpec, ckpt: &Path) -> ExitCode {
    let config = match parse_config_spec(&spec.config_spec) {
        Ok(config) => config,
        Err(e) => return fail(&e),
    };
    let faults = match spec.faults.parse() {
        Ok(faults) => faults,
        Err(e) => return fail(&format!("bad fault spec `{}`: {e}", spec.faults)),
    };
    let Some(pattern) = Pattern::parse_spec(&spec.pattern) else {
        return fail(&format!("bad pattern spec `{}`", spec.pattern));
    };
    let campaign = CampaignConfig {
        load: spec.load,
        pattern,
        windows: Windows {
            warmup: spec.warmup,
            measure: spec.measure,
            drain: spec.drain,
        },
        spec: faults,
        trials: spec.trials,
        base_seed: spec.seed,
    };
    // The manifest records completed trials; the checkpoint holds the
    // in-flight one. Together a retried or resumed worker skips recorded
    // trials and continues the interrupted one mid-flight.
    let manifest = ckpt.with_extension("manifest");
    let (mut trials, mut file) = match open_manifest(&config, &campaign, &manifest) {
        Ok(opened) => opened,
        Err(e) => return fail(&format!("opening the manifest: {e}")),
    };
    while trials.len() < spec.trials as usize {
        let seed = spec.seed + trials.len() as u64;
        let mut beat = |cycle: u64| println!("heartbeat {cycle}");
        let supervision = TrialSupervision {
            cancel: spec
                .cycle_budget
                .map(|budget| CancelToken::new().with_cycle_limit(budget)),
            interrupt: Some(&sig::INTERRUPTED),
            heartbeat: Some(&mut beat),
            sanitize: None,
        };
        match run_trial_supervised(
            config,
            &campaign,
            seed,
            ckpt,
            spec.checkpoint_every,
            supervision,
        ) {
            Ok(Ok(trial)) => {
                if let Err(e) = append_trial(&mut file, &trial) {
                    return fail(&format!("appending trial {seed} to the manifest: {e}"));
                }
                trials.push(trial);
            }
            Ok(Err(TrialStop::Interrupted)) => {
                println!("parked {}", trials.len());
                return ExitCode::from(3);
            }
            Ok(Err(TrialStop::Cancelled(cause))) => {
                return fail(&format!("trial {seed} cancelled: {cause:?}"));
            }
            Ok(Err(TrialStop::Sanitizer(detail))) => {
                return fail(&format!("trial {seed} sanitizer: {detail}"));
            }
            Err(CampaignError::CheckpointMismatch | CampaignError::CheckpointCorrupt(_)) => {
                // Stale or damaged trial checkpoint: drop it and replay
                // the trial from its seed (bit-identical by determinism).
                eprintln!(
                    "mempool-serve worker: discarding stale trial checkpoint {}",
                    ckpt.display()
                );
                let _ = std::fs::remove_file(ckpt);
            }
            Err(e) => return fail(&format!("trial {seed}: {e}")),
        }
    }
    let report = CampaignReport {
        spec: campaign.spec,
        trials,
    };
    println!(
        "result {{\"outcome\":\"completed\",\"trials\":{},\"report\":\"{}\"}}",
        report.trials.len(),
        json_escape(&report.to_json()),
    );
    ExitCode::SUCCESS
}

fn bench_worker(spec: &mempool_serve::BenchSpec) -> ExitCode {
    let config = BenchConfig {
        cycles: spec.cycles,
        warmup: spec.warmup,
        workers: 0,
        core_counts: spec.cores.clone(),
        worker_counts: spec.workers.clone(),
    };
    // Bench points are wall-clock measurements — there is nothing to
    // checkpoint. A park simply reruns the matrix after resume.
    match run_bench_supervised(&config, Some(&sig::INTERRUPTED)) {
        Ok((report, true)) => {
            println!("parked {}", report.points.len());
            ExitCode::from(3)
        }
        Ok((report, false)) => {
            if !report.digests_match() {
                return fail("serial and parallel engines diverged");
            }
            println!(
                "result {{\"outcome\":\"completed\",\"points\":{},\"report\":\"{}\"}}",
                report.points.len(),
                json_escape(&report.to_json()),
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}
