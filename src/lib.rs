//! # mempool-suite
//!
//! The umbrella crate of the MemPool reproduction: re-exports every member
//! crate and hosts the runnable examples (`examples/`), the cross-crate
//! integration tests (`tests/`), and the `mempool-run` CLI.
//!
//! Start from [`mempool`] (the cluster simulator) or the repository
//! README.

pub mod bench;
pub mod error;

pub use error::Error;

pub use mempool;
pub use mempool_kernels;
pub use mempool_mem;
pub use mempool_noc;
pub use mempool_physical;
pub use mempool_riscv;
pub use mempool_snitch;
pub use mempool_traffic;
