//! The simulator benchmark harness behind `mempool-run --bench-json`.
//!
//! Measures *simulator throughput* — how many simulated cluster cycles
//! (and core·cycles) one wall-clock second buys — for the serial and the
//! tile-parallel engine on the ideal/Top4/TopH topologies at 16 and 256
//! cores, and cross-checks that both engines land on the identical
//! `state_digest` (the same oracle the differential tests pin). The
//! resulting `BENCH_*.json` gives every future PR a perf trajectory to
//! move; see DESIGN.md §10 for the schema.

use mempool::{Cluster, ClusterConfig, Topology};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Schema tag stamped into every report.
pub const BENCH_SCHEMA: &str = "mempool-bench-v1";

/// The workload: every core hammers its own 16-word slice of the
/// interleaved region forever — steady mixed local/remote traffic with no
/// halt, so a measurement window of any length is representative.
fn workload() -> mempool_riscv::Program {
    mempool_riscv::assemble(
        "csrr t0, mhartid\n\
         li   t2, 0x10000\n\
         slli t3, t0, 6\n\
         add  t3, t3, t2\n\
         forever:\n\
         mv   t6, t3\n\
         li   t4, 16\n\
         loop:\n\
         sw   t0, 0(t6)\n\
         lw   t5, 0(t6)\n\
         add  t0, t0, t5\n\
         addi t6, t6, 4\n\
         addi t4, t4, -1\n\
         bnez t4, loop\n\
         csrr t0, mhartid\n\
         j    forever\n",
    )
    .expect("benchmark workload assembles")
}

/// Benchmark run parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Measured cycles per point.
    pub cycles: u64,
    /// Warm-up cycles before the timed window (fills the I-caches and the
    /// network).
    pub warmup: u64,
    /// Worker count for the parallel-engine points (`0` = one worker per
    /// available hardware thread). Ignored when `worker_counts` is
    /// nonempty.
    pub workers: usize,
    /// Cluster sizes to measure (subset of {16, 64, 256} cores).
    pub core_counts: Vec<usize>,
    /// Parallel worker counts to sweep (`--bench-workers 2,4,8`): one
    /// parallel point and one digest cross-check per count. Empty = the
    /// single [`BenchConfig::effective_workers`] point.
    pub worker_counts: Vec<usize>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            cycles: 2_000,
            warmup: 200,
            workers: 0,
            core_counts: vec![16, 256],
            worker_counts: Vec::new(),
        }
    }
}

impl BenchConfig {
    /// The effective parallel worker count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// One measured (topology, size, engine) point.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Interconnect topology.
    pub topology: Topology,
    /// Total cores of the measured cluster.
    pub cores: usize,
    /// `"serial"` or `"parallel"`.
    pub engine: &'static str,
    /// Worker threads used (0 for the serial engine).
    pub workers: usize,
    /// Measured simulated cycles.
    pub cycles: u64,
    /// Wall-clock seconds for the measured window.
    pub wall_seconds: f64,
    /// Simulated cluster cycles per wall-clock second.
    pub sim_cycles_per_sec: f64,
    /// Simulated core·cycles per wall-clock second.
    pub core_cycles_per_sec: f64,
    /// `state_digest` at the end of the window (cross-checked below).
    pub state_digest: u64,
}

/// The serial/parallel digest cross-check of one (topology, size) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestCheck {
    /// Interconnect topology.
    pub topology: Topology,
    /// Total cores.
    pub cores: usize,
    /// Worker threads of the parallel engine under check.
    pub workers: usize,
    /// Cycles both engines simulated (warmup + measured window).
    pub cycles: u64,
    /// Final digest of the serial engine.
    pub serial_digest: u64,
    /// Final digest of the parallel engine.
    pub parallel_digest: u64,
}

impl DigestCheck {
    /// Whether both engines agree.
    pub fn matches(&self) -> bool {
        self.serial_digest == self.parallel_digest
    }
}

/// A full benchmark report: the measured points plus the digest
/// cross-checks.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Every measured point.
    pub points: Vec<BenchPoint>,
    /// One serial-vs-parallel check per (topology, size).
    pub digest_checks: Vec<DigestCheck>,
}

impl BenchReport {
    /// Whether every digest cross-check passed.
    pub fn digests_match(&self) -> bool {
        self.digest_checks.iter().all(DigestCheck::matches)
    }

    /// Renders the report as the `BENCH_*.json` document (schema in
    /// DESIGN.md §10).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{BENCH_SCHEMA}\",");
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"topology\": \"{}\", \"cores\": {}, \"engine\": \"{}\", \
                 \"workers\": {}, \"cycles\": {}, \"wall_seconds\": {:.6}, \
                 \"sim_cycles_per_sec\": {:.1}, \"core_cycles_per_sec\": {:.1}, \
                 \"state_digest\": \"{:#018x}\"}}",
                p.topology,
                p.cores,
                p.engine,
                p.workers,
                p.cycles,
                p.wall_seconds,
                p.sim_cycles_per_sec,
                p.core_cycles_per_sec,
                p.state_digest,
            );
            out.push_str(if i + 1 < self.points.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"digest_checks\": [\n");
        for (i, c) in self.digest_checks.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"topology\": \"{}\", \"cores\": {}, \"workers\": {}, \"cycles\": {}, \
                 \"serial_digest\": \"{:#018x}\", \"parallel_digest\": \"{:#018x}\", \
                 \"match\": {}}}",
                c.topology,
                c.cores,
                c.workers,
                c.cycles,
                c.serial_digest,
                c.parallel_digest,
                c.matches(),
            );
            out.push_str(if i + 1 < self.digest_checks.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The cluster configuration of one benchmark size: 16 cores is the
/// 4-tile small cluster (the CI smoke size), 64 the paper's small
/// configuration, 256 the full paper cluster.
///
/// # Errors
///
/// An unsupported core count.
pub fn bench_cluster_config(topology: Topology, cores: usize) -> Result<ClusterConfig, String> {
    match cores {
        16 => {
            // Keep the small cluster's 16-tile fabric (TopH needs 4 tiles
            // per group for its inter-group butterflies) and thin each
            // tile to one core.
            let mut config = ClusterConfig::small(topology);
            config.cores_per_tile = 1;
            Ok(config)
        }
        64 => Ok(ClusterConfig::small(topology)),
        256 => Ok(ClusterConfig::paper(topology)),
        other => Err(format!("unsupported bench size: {other} cores (16/64/256)")),
    }
}

fn bench_cluster(
    topology: Topology,
    cores: usize,
    workers: usize,
) -> Result<Cluster<mempool_snitch::SnitchCore>, String> {
    let config = bench_cluster_config(topology, cores)?;
    let mut cluster = Cluster::snitch(config).map_err(|e| e.to_string())?;
    cluster
        .load_program(&workload())
        .map_err(|e| e.to_string())?;
    cluster.set_workers(workers);
    Ok(cluster)
}

/// Measures one point and returns its final digest.
fn measure_point(
    report: &mut BenchReport,
    config: &BenchConfig,
    topology: Topology,
    cores: usize,
    engine_workers: usize,
) -> Result<u64, String> {
    let engine = if engine_workers == 0 { "serial" } else { "parallel" };
    let mut cluster = bench_cluster(topology, cores, engine_workers)?;
    cluster.step_cycles(config.warmup);
    let start = Instant::now();
    cluster.step_cycles(config.cycles);
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let digest = cluster.state_digest();
    report.points.push(BenchPoint {
        topology,
        cores,
        engine,
        workers: engine_workers,
        cycles: config.cycles,
        wall_seconds: wall,
        sim_cycles_per_sec: config.cycles as f64 / wall,
        core_cycles_per_sec: (config.cycles * cores as u64) as f64 / wall,
        state_digest: digest,
    });
    Ok(digest)
}

/// Runs the full benchmark matrix: {serial, parallel × worker counts} ×
/// `core_counts` × {ideal, Top4, TopH}, one digest cross-check per
/// (cell, worker count).
///
/// # Errors
///
/// Configuration errors (unsupported size) only; measurement itself is
/// infallible.
pub fn run_bench(config: &BenchConfig) -> Result<BenchReport, String> {
    run_bench_supervised(config, None).map(|(report, _)| report)
}

/// [`run_bench`] with an interrupt flag checked between points: when the
/// flag is raised (SIGINT/SIGTERM), the sweep stops after the point in
/// flight and returns the partial report plus `true` — measurements
/// already taken are never lost to an interrupt.
///
/// # Errors
///
/// Configuration errors (unsupported size) only.
pub fn run_bench_supervised(
    config: &BenchConfig,
    interrupt: Option<&AtomicBool>,
) -> Result<(BenchReport, bool), String> {
    let worker_counts = if config.worker_counts.is_empty() {
        vec![config.effective_workers()]
    } else {
        config.worker_counts.clone()
    };
    let topologies = [Topology::Ideal, Topology::Top4, Topology::TopH];
    let mut report = BenchReport {
        points: Vec::new(),
        digest_checks: Vec::new(),
    };
    let stop = || interrupt.is_some_and(|flag| flag.load(Ordering::SeqCst));
    for &cores in &config.core_counts {
        for topology in topologies {
            if stop() {
                return Ok((report, true));
            }
            let serial_digest = measure_point(&mut report, config, topology, cores, 0)?;
            for &workers in &worker_counts {
                if stop() {
                    return Ok((report, true));
                }
                let parallel_digest =
                    measure_point(&mut report, config, topology, cores, workers.max(1))?;
                report.digest_checks.push(DigestCheck {
                    topology,
                    cores,
                    workers: workers.max(1),
                    cycles: config.warmup + config.cycles,
                    serial_digest,
                    parallel_digest,
                });
            }
        }
    }
    Ok((report, false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_consistent_and_digests_match() {
        let config = BenchConfig {
            cycles: 300,
            warmup: 50,
            workers: 2,
            core_counts: vec![16],
            worker_counts: Vec::new(),
        };
        let report = run_bench(&config).expect("bench runs");
        assert_eq!(report.points.len(), 6); // 3 topologies × 2 engines
        assert_eq!(report.digest_checks.len(), 3);
        assert!(report.digests_match(), "{:#?}", report.digest_checks);
        for p in &report.points {
            assert!(p.wall_seconds > 0.0);
            assert!(p.sim_cycles_per_sec > 0.0);
            assert_eq!(
                p.core_cycles_per_sec,
                p.sim_cycles_per_sec * p.cores as f64
            );
        }
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"mempool-bench-v1\""));
        assert!(json.contains("\"match\": true"));
        assert!(!json.contains("\"match\": false"));
        // Crude structural sanity: balanced braces/brackets.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count()
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count()
        );
    }

    #[test]
    fn worker_sweep_checks_every_count_and_interrupts_cleanly() {
        let config = BenchConfig {
            cycles: 200,
            warmup: 50,
            core_counts: vec![16],
            worker_counts: vec![1, 2],
            ..BenchConfig::default()
        };
        let report = run_bench(&config).expect("bench runs");
        assert_eq!(report.points.len(), 9); // 3 topologies × (serial + 2 parallel)
        assert_eq!(report.digest_checks.len(), 6); // one per (cell, worker count)
        assert!(report.digests_match(), "{:#?}", report.digest_checks);
        assert!(report.to_json().contains("\"workers\": 2"));

        // An already-raised interrupt stops before the first point; the
        // report comes back (empty here) instead of being discarded.
        let flag = AtomicBool::new(true);
        let (partial, interrupted) =
            run_bench_supervised(&config, Some(&flag)).expect("supervised");
        assert!(interrupted);
        assert!(partial.points.is_empty());
    }

    #[test]
    fn unsupported_size_is_a_typed_error() {
        let err = bench_cluster_config(Topology::TopH, 12).expect_err("12 cores unsupported");
        assert!(err.contains("12"), "{err}");
    }
}
