//! Hybrid addressing scheme in action (§IV of the paper): the same DCT
//! binary runs twice — once with the scrambling logic keeping each core's
//! blocks and stack in its own tile, once on the plain interleaved map —
//! and the cycle counts show why the scheme is worth a wire crossing and a
//! multiplexer.
//!
//! Run with: `cargo run --release --example hybrid_addressing`

use mempool::{Cluster, ClusterConfig, Topology};
use mempool_kernels::{run_kernel, Dct, Geometry, Kernel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scrambled = ClusterConfig::paper(Topology::TopH);
    let mut interleaved = scrambled;
    interleaved.seq_region_bytes = None;

    // First, show the address transformation itself.
    let cluster = Cluster::snitch(scrambled)?;
    let scr = cluster.scrambler().expect("scrambling enabled");
    let map = cluster.address_map();
    println!("the scrambler is a pure wire crossing (bijective, same view for all cores):");
    for tile in [0u32, 1, 63] {
        let vaddr = scr.seq_base(tile) + 0x40;
        let at = map.decode(scr.scramble(vaddr)).expect("in range");
        println!(
            "  programmer address {vaddr:#08x} (tile {tile}'s sequential region) \
             -> tile {:>2}, bank {:>2}, row {:>3}",
            at.tile, at.bank, at.row
        );
    }
    let outside = scr.seq_region_bytes() as u32 + 0x40;
    println!(
        "  programmer address {outside:#08x} (interleaved region)        -> unchanged: {:#08x}\n",
        scr.scramble(outside)
    );

    // Then run the paper's stack-heavy kernel both ways.
    let geom = Geometry::from_config(&scrambled, 4096);
    let dct = Dct::new(geom)?;
    println!("running `{}` (8x8 blocks + stack intermediates) on 256 cores, TopH:", dct.name());

    let with = run_kernel(&dct, scrambled, 99, 100_000_000)?;
    println!(
        "  scrambling ON : {:>8} cycles, {:>5.1} % of accesses local",
        with.cycles,
        100.0 * with.stats.locality()
    );
    let without = run_kernel(&dct, interleaved, 99, 100_000_000)?;
    println!(
        "  scrambling OFF: {:>8} cycles, {:>5.1} % of accesses local",
        without.cycles,
        100.0 * without.stats.locality()
    );
    println!(
        "\nthe hybrid map made the identical binary {:.2}x faster — the paper's",
        without.cycles as f64 / with.cycles as f64
    );
    println!("\"performance gains of up to 20 % in real-world benchmarks\" (and far more");
    println!("for fully stack-resident kernels), at zero programming-model cost.");
    Ok(())
}
