//! Program-level profiling: run the matmul benchmark under the profiler
//! and break its runtime down by kernel region, stall cause, and power
//! over time — the data behind a Fig. 7-style "where did the cycles go"
//! analysis.
//!
//! The kernel marks its phases by writing the custom `mregion` CSR
//! (`mempool_kernels::emit_region`), every core attributes each cycle it
//! spends to a `(region, PC)` pair, and the cluster samples activity
//! windows that `mempool_physical` prices into a power timeline.
//!
//! Run with: `cargo run --release --example profiling`

use mempool::{ClusterConfig, ProfileConfig, SimSession, Topology};
use mempool_kernels::{build_program, Geometry, Kernel, Matmul};
use mempool_physical::power_timeline;
use mempool_snitch::profile::{stall_name, REGION_NAMES, STALL_CAUSES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ClusterConfig::paper(Topology::TopH);
    let geom = Geometry::from_config(&config, 4096);
    let kernel = Matmul::new(geom, 64)?;
    let program = build_program(&kernel, &config)?;

    let mut session = SimSession::builder(config)
        .profile(ProfileConfig::with_power_window(1024))
        .build_snitch()?;
    session.load_program(&program)?;
    kernel.init(session.cluster_mut(), 42);
    let cycles = session.run(10_000_000)?;
    kernel.check(session.cluster(), 42)?;
    println!(
        "matmul 64x64 on {} cores: {cycles} cycles, result verified",
        config.num_cores()
    );

    // Region breakdown: where did the core-cycles go?
    let regions = session.cluster().region_profile().expect("profiling on");
    let attributed: u64 = regions.iter().map(|r| r.cycles()).sum();
    println!("\nregion breakdown:");
    for (slot, r) in regions.iter().enumerate() {
        if r.cycles() == 0 {
            continue;
        }
        let top = STALL_CAUSES
            .iter()
            .zip(&r.stalls)
            .max_by_key(|(_, &n)| n)
            .filter(|(_, &n)| n > 0)
            .map(|(&c, _)| stall_name(c))
            .unwrap_or("-");
        println!(
            "  {:<10} {:>5.1} % of cycles ({:>4.1} % stalled, mostly {top})",
            REGION_NAMES[slot],
            100.0 * r.cycles() as f64 / attributed.max(1) as f64,
            100.0 * r.stall_cycles() as f64 / r.cycles() as f64,
        );
    }

    // Power timeline: the §VI-D operating point, per sampling window.
    let windows = session.power_windows().expect("profiling on");
    let priced = power_timeline(&windows, config.cores_per_tile, config.banks_per_tile, 500.0);
    println!("\npower timeline (500 MHz):");
    for p in &priced {
        let mean_tile: f64 = p.tiles_mw.iter().sum::<f64>() / p.tiles_mw.len() as f64;
        println!(
            "  cycles {:>6}..{:<6} cluster {:>5.2} W (compute {:>5.2}, interconnect {:>5.2}; \
             mean tile {:>5.1} mW)",
            p.start,
            p.end,
            p.cluster_w(),
            p.compute_w,
            p.interconnect_w,
            mean_tile
        );
    }

    // Folded stacks: feed this file to a flamegraph renderer.
    let folded = session.profile_folded().expect("profiling on");
    println!("\nfolded-stack profile: {} lines (flamegraph-ready)", folded.lines().count());
    Ok(())
}
