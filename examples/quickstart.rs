//! Quickstart: build a MemPool cluster, run a small parallel program on all
//! cores, and read back the results.
//!
//! Every core computes `hartid²` with a multiply, stores it into a shared
//! array, synchronizes on a barrier, and then verifies its left neighbour's
//! slot — exercising the shared-L1 view that makes MemPool "easy to
//! program".
//!
//! Run with: `cargo run --release --example quickstart`

use mempool::{Cluster, ClusterConfig, Topology};
use mempool_kernels::{emit_barrier, emit_epilogue, emit_prologue, Geometry};
use mempool_riscv::assemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's full 256-core cluster with the TopH interconnect.
    let config = ClusterConfig::paper(Topology::TopH);
    let geom = Geometry::from_config(&config, 4096);
    let table = geom.data_base(); // shared array in the interleaved region

    let source = format!
        ("{prologue}\
         \t# table[hartid] = hartid * hartid\n\
         \tmul  t0, s0, s0\n\
         \tli   t1, {table}\n\
         \tslli t2, s0, 2\n\
         \tadd  t1, t1, t2\n\
         \tsw   t0, (t1)\n\
         \tjal  ra, __barrier\n\
         \t# read the left neighbour's slot\n\
         \taddi t3, s0, -1\n\
         \tbgez t3, in_range\n\
         \tli   t3, {last}\n\
         in_range:\n\
         \tslli t3, t3, 2\n\
         \tli   t1, {table}\n\
         \tadd  t1, t1, t3\n\
         \tlw   a0, (t1)\n\
         {epilogue}\
         {barrier}",
        prologue = emit_prologue(&geom),
        epilogue = emit_epilogue(),
        barrier = emit_barrier(&geom),
        last = geom.num_cores() - 1,
    );

    let program = assemble(&source)?;
    let mut cluster = Cluster::snitch(config)?;
    cluster.load_program(&program)?;
    let cycles = cluster.run(10_000_000)?;

    // Verify both the shared table and each core's observation.
    for core in 0..geom.num_cores() {
        let expected = (core as u32).pow(2);
        assert_eq!(cluster.read_word(table + 4 * core as u32), Some(expected));
        let left = if core == 0 { geom.num_cores() - 1 } else { core - 1 } as u32;
        assert_eq!(cluster.cores()[core].reg(mempool_riscv::Reg::A0), left * left);
    }

    let stats = cluster.stats();
    println!("ran {} cores for {cycles} cycles", geom.num_cores());
    println!(
        "memory traffic: {} requests ({:.1} % local), mean round-trip {:.2} cycles",
        stats.requests_issued,
        100.0 * stats.locality(),
        stats.latency.mean()
    );
    println!("all {} squared-hartid slots verified", geom.num_cores());
    Ok(())
}
