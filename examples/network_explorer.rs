//! Network explorer: compare the three MemPool interconnect topologies
//! under synthetic traffic, the way §V-A of the paper does, and watch the
//! saturation points emerge.
//!
//! Run with: `cargo run --release --example network_explorer [load]`
//!
//! An optional load argument (requests/core/cycle) prints a single
//! detailed point instead of the default mini-sweep.

use mempool::{ClusterConfig, Topology};
use mempool_traffic::{run_point, Pattern, Windows};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let windows = Windows {
        warmup: 500,
        measure: 4_000,
        drain: 60_000,
    };
    let topologies = [Topology::Top1, Topology::Top4, Topology::TopH];

    if let Some(load) = std::env::args().nth(1) {
        let load: f64 = load.parse()?;
        println!("single point at load {load} (256-core cluster, uniform traffic)\n");
        for topo in topologies {
            let p = run_point(
                ClusterConfig::paper(topo),
                Pattern::Uniform,
                load,
                windows,
                7,
            )?;
            println!(
                "{topo:>5}: delivered {:.3} req/core/cycle, latency mean {:.2} / p99 {} cycles",
                p.throughput,
                p.latency.mean(),
                p.latency.quantile(0.99).unwrap_or(0),
            );
        }
        return Ok(());
    }

    println!("mini-sweep on the 256-core cluster (uniform random destinations)");
    println!("paper reference: Top1 congests at ~0.10, Top4/TopH at ~0.38\n");
    println!(
        "{:>6} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "load", "thr:top1", "top4", "topH", "lat:top1", "top4", "topH"
    );
    for load in [0.05, 0.10, 0.20, 0.30, 0.40] {
        let mut thr = Vec::new();
        let mut lat = Vec::new();
        for topo in topologies {
            let p = run_point(
                ClusterConfig::paper(topo),
                Pattern::Uniform,
                load,
                windows,
                7,
            )?;
            thr.push(p.throughput);
            lat.push(p.latency.mean());
        }
        println!(
            "{load:>6.2} | {:>8.3} {:>8.3} {:>8.3} | {:>8.1} {:>8.1} {:>8.1}",
            thr[0], thr[1], thr[2], lat[0], lat[1], lat[2]
        );
    }
    println!("\n(latencies explode once a topology saturates — Fig. 5b of the paper)");
    Ok(())
}
