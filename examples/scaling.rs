//! Scaling study: grow the TopH cluster from 64 to 1024 cores and watch a
//! fixed matmul problem scale — the direction MemPool's follow-up work
//! (TeraPool-class systems) takes the architecture.
//!
//! Run with: `cargo run --release --example scaling`

use mempool::{ClusterConfig, Topology};
use mempool_kernels::{run_kernel, Geometry, Matmul};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("strong scaling of a 64x64 integer matmul on TopH\n");
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "tiles", "cores", "cycles", "speedup", "IPC/core", "local%"
    );
    let mut baseline = None;
    for tiles in [16usize, 64, 256] {
        let mut cfg = ClusterConfig::paper(Topology::TopH);
        cfg.num_tiles = tiles;
        let geom = Geometry::from_config(&cfg, 4096);
        let kernel = Matmul::new(geom, 64)?;
        let run = run_kernel(&kernel, cfg, 7, 200_000_000)?;
        let base = *baseline.get_or_insert(run.cycles);
        let ipc = run.core_totals.instret as f64 / (run.cycles as f64 * cfg.num_cores() as f64);
        println!(
            "{tiles:>8} {:>8} {:>10} {:>9.2}x {:>10.3} {:>9.1}%",
            cfg.num_cores(),
            run.cycles,
            base as f64 / run.cycles as f64,
            ipc,
            100.0 * run.stats.locality(),
        );
    }
    println!("\nspeedup is sublinear: the per-core share of the fixed problem shrinks");
    println!("while the 3-5 cycle interconnect latency and bank conflicts stay put.");
    println!("every configuration's result is verified against the golden model.");
    Ok(())
}
