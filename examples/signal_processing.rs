//! Signal processing on MemPool: run the paper's three benchmark kernels
//! (§V-C) on a chosen topology, verify every result against golden models,
//! and print a per-kernel profile.
//!
//! Run with: `cargo run --release --example signal_processing [top1|top4|topH|ideal]`

use mempool::{ClusterConfig, Topology};
use mempool_kernels::{run_kernel, Conv2d, Dct, Fft, Geometry, Kernel, Matmul};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = match std::env::args().nth(1).as_deref() {
        None | Some("topH") => Topology::TopH,
        Some("top1") => Topology::Top1,
        Some("top4") => Topology::Top4,
        Some("ideal") => Topology::Ideal,
        Some(other) => {
            eprintln!("unknown topology `{other}` (use top1|top4|topH|ideal)");
            std::process::exit(1);
        }
    };
    let config = ClusterConfig::paper(topology);
    let geom = Geometry::from_config(&config, 4096);

    let matmul = Matmul::new(geom, 64)?;
    let conv = Conv2d::auto(geom)?;
    let dct = Dct::new(geom)?;
    let fft = Fft::new(geom, 2048)?;
    let kernels: [&dyn Kernel; 4] = [&matmul, &conv, &dct, &fft];

    println!(
        "running the paper's benchmarks on {} ({} cores, hybrid addressing on)\n",
        topology,
        geom.num_cores()
    );
    println!(
        "{:<8} {:>9} {:>8} {:>9} {:>10} {:>9} {:>9}",
        "kernel", "cycles", "IPC", "local%", "lat.mean", "ifetch%", "verified"
    );
    for kernel in kernels {
        let run = run_kernel(kernel, config, 7, 200_000_000)?;
        let ipc = run.core_totals.instret as f64
            / (run.cycles as f64 * geom.num_cores() as f64);
        println!(
            "{:<8} {:>9} {:>8.3} {:>8.1}% {:>10.2} {:>8.1}% {:>9}",
            kernel.name(),
            run.cycles,
            ipc,
            100.0 * run.stats.locality(),
            run.stats.latency.mean(),
            100.0 * run.icache.hit_rate(),
            "yes"
        );
    }
    println!("\nevery output was checked element-by-element against the Rust golden models");
    println!("(matmul: remote-heavy; 2dconv: halo exchanges only; dct: fully tile-local;");
    println!(" fft: the 'non-systolic' showcase — strided remote butterflies + barriers).");
    Ok(())
}
